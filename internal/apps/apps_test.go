package apps

import (
	"testing"

	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

func scalarX86() isa.Variant { return isa.Variant{ISA: isa.X8664()} }

// regionInstr returns each region's total machine instruction count under
// the variant.
func regionInstr(p *trace.Program, v isa.Variant) []float64 {
	out := make([]float64, len(p.Regions))
	for i, r := range p.Regions {
		for _, w := range r.Work {
			out[i] += trace.Compile(w.Block, w.Trips, v).Instructions()
		}
	}
	return out
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("registry has %d apps, want the 11 of Table I", len(all))
	}
	want := []string{"AMGMk", "CoMD", "graph500", "HPCG", "HPGMG-FV",
		"LULESH", "MCB", "miniFE", "PathFinder", "RSBench", "XSBench"}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("app %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Description == "" || a.Build == nil {
			t.Errorf("%s: incomplete registration", a.Name)
		}
	}
}

func TestEvaluatedSubset(t *testing.T) {
	ev := Evaluated()
	if len(ev) != 7 {
		t.Fatalf("evaluated apps = %d, want 7", len(ev))
	}
	for _, a := range ev {
		if a.SingleRegion || a.ArchDependentRegions {
			t.Errorf("%s should not be in the evaluated set", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("LULESH"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestAllProgramsBuildAndValidate(t *testing.T) {
	for _, a := range All() {
		for _, threads := range []int{1, 2, 4, 8} {
			for _, v := range isa.Variants() {
				p, err := a.Build(threads, v)
				if err != nil {
					t.Fatalf("%s %d threads %s: %v", a.Name, threads, v, err)
				}
				if err := p.Validate(); err != nil {
					t.Fatalf("%s %d threads %s: %v", a.Name, threads, v, err)
				}
			}
		}
	}
}

func TestBuildersRejectBadThreadCounts(t *testing.T) {
	for _, a := range All() {
		if _, err := a.Build(0, scalarX86()); err == nil {
			t.Errorf("%s: zero threads should fail", a.Name)
		}
		if _, err := a.Build(9, scalarX86()); err == nil {
			t.Errorf("%s: nine threads should fail", a.Name)
		}
	}
}

func TestTableIIIRegionCounts(t *testing.T) {
	want := map[string]int{
		"AMGMk":    1000,
		"CoMD":     810,
		"graph500": 197,
		"HPCG":     803,
		"MCB":      10,
		"miniFE":   1208,
	}
	for name, n := range want {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := a.Build(8, scalarX86())
		if err != nil {
			t.Fatal(err)
		}
		if got := p.TotalRegions(); got != n {
			t.Errorf("%s: %d regions, want %d (Table III)", name, got, n)
		}
	}
}

func TestLULESHRegionCountsByThreads(t *testing.T) {
	a, _ := ByName("LULESH")
	p1, err := a.Build(1, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalRegions() != 9800 {
		t.Errorf("LULESH 1 thread: %d regions, want 9800", p1.TotalRegions())
	}
	p8, err := a.Build(8, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	if p8.TotalRegions() != 9840 {
		t.Errorf("LULESH 8 threads: %d regions, want 9840", p8.TotalRegions())
	}
}

func TestSingleRegionApps(t *testing.T) {
	for _, name := range []string{"RSBench", "XSBench", "PathFinder"} {
		a, _ := ByName(name)
		if !a.SingleRegion {
			t.Errorf("%s should be flagged SingleRegion", name)
		}
		p, err := a.Build(4, scalarX86())
		if err != nil {
			t.Fatal(err)
		}
		if p.TotalRegions() != 1 {
			t.Errorf("%s: %d regions, want 1", name, p.TotalRegions())
		}
	}
}

func TestHPGMGFVArchDependentRegionCount(t *testing.T) {
	a, _ := ByName("HPGMG-FV")
	if !a.ArchDependentRegions {
		t.Fatal("HPGMG-FV should be flagged ArchDependentRegions")
	}
	px, err := a.Build(4, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := a.Build(4, isa.Variant{ISA: isa.ARMv8()})
	if err != nil {
		t.Fatal(err)
	}
	if px.TotalRegions() == pa.TotalRegions() {
		t.Errorf("HPGMG-FV region counts should differ across architectures, both %d",
			px.TotalRegions())
	}
}

func TestGraph500GenerationDominates(t *testing.T) {
	a, _ := ByName("graph500")
	p, err := a.Build(8, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	instr := regionInstr(p, scalarX86())
	genShare := instr[0] / sum(instr)
	if genShare < 0.20 || genShare > 0.45 {
		t.Errorf("generation region is %.1f%% of instructions, want ~30%%", genShare*100)
	}
}

func TestMiniFESpMVDominatesIteration(t *testing.T) {
	a, _ := ByName("miniFE")
	p, err := a.Build(8, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	instr := regionInstr(p, scalarX86())
	// Regions 8..13 are the first CG iteration; the SpMV is region 8.
	iter := instr[8:14]
	if share := iter[0] / sum(iter); share < 0.75 || share > 0.95 {
		t.Errorf("miniFE SpMV is %.1f%% of a CG iteration, want ~85%%", share*100)
	}
}

func TestLULESHRegionsAreTiny(t *testing.T) {
	a, _ := ByName("LULESH")
	p, err := a.Build(8, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	instr := regionInstr(p, scalarX86())
	var big int
	for _, n := range instr {
		if n > 300000 {
			big++
		}
	}
	if frac := float64(big) / float64(len(instr)); frac > 0.1 {
		t.Errorf("%.0f%% of LULESH regions exceed 300k instructions; they must stay far smaller than the accurate apps' regions", frac*100)
	}
}

func TestGoodAppsHaveSubstantialRegions(t *testing.T) {
	// The six accurate apps need regions big enough that counter-read
	// overhead stays negligible.
	for _, name := range []string{"AMGMk", "CoMD", "graph500", "HPCG", "MCB", "miniFE"} {
		a, _ := ByName(name)
		p, err := a.Build(8, scalarX86())
		if err != nil {
			t.Fatal(err)
		}
		instr := regionInstr(p, scalarX86())
		var small int
		for _, n := range instr {
			if n < 300000 {
				small++
			}
		}
		if frac := float64(small) / float64(len(instr)); frac > 0.05 {
			t.Errorf("%s: %.0f%% of regions under 300k instructions — overhead would dominate", name, frac*100)
		}
	}
}

func TestVectorisedVariantsShrinkInstructionCounts(t *testing.T) {
	for _, name := range []string{"AMGMk", "HPCG", "miniFE", "CoMD", "LULESH"} {
		a, _ := ByName(name)
		p, err := a.Build(4, scalarX86())
		if err != nil {
			t.Fatal(err)
		}
		scalar := sum(regionInstr(p, scalarX86()))
		vect := sum(regionInstr(p, isa.Variant{ISA: isa.X8664(), Vectorised: true}))
		if vect >= scalar {
			t.Errorf("%s: vectorised count %.0f should be below scalar %.0f", name, vect, scalar)
		}
	}
}

func TestCrossISAInstructionCountsClose(t *testing.T) {
	// Blem et al.: instruction counts should be similar (not identical)
	// across the ISAs for the scalar builds.
	for _, a := range All() {
		p, err := a.Build(4, scalarX86())
		if err != nil {
			t.Fatal(err)
		}
		x := sum(regionInstr(p, scalarX86()))
		arm := sum(regionInstr(p, isa.Variant{ISA: isa.ARMv8()}))
		if ratio := arm / x; ratio < 0.9 || ratio > 1.12 {
			t.Errorf("%s: ARM/x86 instruction ratio %.3f out of range", a.Name, ratio)
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a, _ := ByName("HPCG")
	p1, err := a.Build(4, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Build(4, scalarX86())
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalRegions() != p2.TotalRegions() || len(p1.Blocks) != len(p2.Blocks) {
		t.Error("builds must be deterministic")
	}
	i1 := regionInstr(p1, scalarX86())
	i2 := regionInstr(p2, scalarX86())
	for i := range i1 {
		if i1[i] != i2[i] {
			t.Fatal("region instruction counts differ between identical builds")
		}
	}
}
