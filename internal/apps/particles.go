package apps

import (
	"barrierpoint/internal/isa"
	"barrierpoint/internal/trace"
)

// CoMD: classical molecular dynamics. 100 timesteps of eight regions plus
// ten redistribution regions — 810 barrier points. The dominant force
// kernel streams through sorted cell lists, which the X-Gene's stream
// prefetcher almost entirely absorbs: CoMD's L1D miss counts on ARMv8 are
// tiny, and their measurement variability (up to ~57%) makes the L1D
// estimate unusable there (Section V-C).
var CoMD = register(&App{
	Name:             "CoMD",
	Description:      "Co-designed Molecular Dynamics: a classical molecular dynamics proxy application",
	Input:            "-e -T 4000",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("CoMD")
		atoms := p.AddData("atoms", 40*1024) // 2.5 MiB of positions/forces
		cells := p.AddData("link-cells", 12288)

		force := p.AddBlock(trace.Block{
			Name: "ljForce", Mix: mk(4, 4, 4, 0.1, 4, 1, 1), Vectorisable: true,
			LinesPerIter: 0.006, Pattern: trace.Sequential, Data: atoms,
		})
		advVel := p.AddBlock(trace.Block{
			Name: "advanceVelocity", Mix: mk(2, 2, 1, 0, 2, 1, 1), Vectorisable: true,
			LinesPerIter: 0.004, Pattern: trace.Sequential, Data: atoms,
		})
		advPos := p.AddBlock(trace.Block{
			Name: "advancePosition", Mix: mk(2, 2, 1, 0, 2, 1, 1), Vectorisable: true,
			LinesPerIter: 0.004, Pattern: trace.Sequential, Data: atoms,
		})
		kinetic := p.AddBlock(trace.Block{
			Name: "kineticEnergy", Mix: mk(2, 2, 2, 0, 2, 0, 1), Vectorisable: true,
			LinesPerIter: 0.004, Pattern: trace.Sequential, Data: atoms,
		})
		halo := p.AddBlock(trace.Block{
			Name: "haloExchange", Mix: mk(4, 0, 0, 0, 3, 2, 1),
			LinesPerIter: 0.05, Pattern: trace.Random, Data: cells,
		})
		sortA := p.AddBlock(trace.Block{
			Name: "sortAtoms", Mix: mk(5, 0, 0, 0, 3, 2, 2),
			LinesPerIter: 0.01, Pattern: trace.Sequential, Data: cells,
		})
		redist := p.AddBlock(trace.Block{
			Name: "redistributeAtoms", Mix: mk(5, 1, 0, 0, 4, 3, 2),
			LinesPerIter: 0.006, Pattern: trace.Gather, Data: atoms,
		})

		sw := map[*trace.Block]func(int64) trace.BlockExec{}
		for _, b := range []*trace.Block{force, advVel, advPos, kinetic, halo, sortA, redist} {
			sw[b] = sweeper(b)
		}
		// Neighbour-list occupancy drifts as atoms move, so the force
		// region's pair-count share varies across timesteps (the paper
		// selects 12-18 points for CoMD).
		const steps = 100
		for s := 0; s < steps; s++ {
			p.AddRegion("advance-velocity-1", sw[advVel](130000))
			p.AddRegion("advance-position", sw[advPos](130000))
			p.AddRegion("halo-exchange", sw[halo](40000))
			p.AddRegion("force", sw[force](700000), sw[sortA](int64(3000+s%5*6000)))
			p.AddRegion("advance-velocity-2", sw[advVel](130000))
			p.AddRegion("kinetic-energy", sw[kinetic](100000))
			p.AddRegion("sort-atoms", sw[sortA](60000))
			p.AddRegion("update-cells", sw[sortA](30000))
			if s%10 == 9 {
				p.AddRegion("redistribute", sw[redist](180000))
			}
		}
		p.Finalise()
		return p, p.Validate()
	},
})

// MCB: the Monte Carlo Benchmark. Only ten parallel regions, and the
// particle population spreads across an ever larger footprint as the
// simulation progresses: the L2 data MPKI rises with every region
// (Figure 1), making barrier point set choice matter much more than for
// the regular solvers.
var MCB = register(&App{
	Name:             "MCB",
	Description:      "Monte Carlo Benchmark: a simple heuristic transport equation using a Monte Carlo technique",
	Input:            "--nZonesX 200 --nZonesY 160 --numParticles 320000 --distributedSource --mirrorBoundary",
	EvaluatedInPaper: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("MCB")
		zones := p.AddData("zonal-tallies", 100*1024) // 6.25 MiB
		particles := p.AddData("particle-buffers", 16*1024)

		track := p.AddBlock(trace.Block{
			Name: "advanceParticles", Mix: mk(5, 3, 3, 0.2, 5, 2, 2),
			LinesPerIter: 0.05, Pattern: trace.PointerChase, Data: zones,
		})
		source := p.AddBlock(trace.Block{
			Name: "sourceParticles", Mix: mk(4, 2, 2, 0, 3, 2, 1), Vectorisable: true,
			LinesPerIter: 0.004, Pattern: trace.Sequential, Data: particles,
		})

		const regions = 10
		for i := 0; i < regions; i++ {
			// The particle population disperses: each tracking cycle's
			// footprint grows by ~530 KiB, from L2-resident (160 KiB) to
			// deep into L3 (4.8 MiB). Data access becomes progressively
			// more irregular, so the L2D MPKI and the CPI rise across the
			// execution — the behaviour Figure 1 plots.
			ws := []int64{4500, 4500, 4500, 21000, 21000,
				40000, 40000, 40000, 70000, 70000}[i]
			p.AddRegion("tracking-cycle",
				trace.BlockExec{Block: source, Trips: 400000},
				trace.BlockExec{Block: track, Trips: 2200000, WSLines: ws},
			)
		}
		p.Finalise()
		return p, p.Validate()
	},
})

// RSBench: Monte Carlo neutronics with the multipole cross-section
// representation. The core loop is one embarrassingly parallel region —
// a single barrier point, trivially representative but useless for
// simulation-time reduction (Section V-B).
var RSBench = register(&App{
	Name:         "RSBench",
	Description:  "Monte Carlo particle transport simulation: a proxy application with a \"multipole\" cross section lookup algorithm",
	Input:        "-s small",
	SingleRegion: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("RSBench")
		poles := p.AddData("multipole-data", 64*1024) // 4 MiB
		lookup := p.AddBlock(trace.Block{
			Name: "calculate_macro_xs", Mix: mk(5, 4, 4, 0.3, 5, 1, 2),
			LinesPerIter: 0.05, Pattern: trace.Random, Data: poles,
		})
		p.AddRegion("xs-lookup-loop", trace.BlockExec{Block: lookup, Trips: 3000000})
		p.Finalise()
		return p, p.Validate()
	},
})

// XSBench: Monte Carlo neutronics with the classic unionised-grid
// macroscopic cross-section lookup. Like RSBench, a single parallel region.
var XSBench = register(&App{
	Name:         "XSBench",
	Description:  "Monte Carlo particle transport simulation: a proxy application with macroscopic neutron cross sections",
	Input:        "-s small",
	SingleRegion: true,
	Build: func(threads int, v isa.Variant) (*trace.Program, error) {
		if err := checkThreads(threads); err != nil {
			return nil, err
		}
		p := trace.NewProgram("XSBench")
		grid := p.AddData("unionized-grid", 96*1024) // 6 MiB
		lookup := p.AddBlock(trace.Block{
			Name: "calculate_xs", Mix: mk(5, 3, 3, 0, 6, 1, 2),
			LinesPerIter: 0.05, Pattern: trace.Random, Data: grid,
		})
		p.AddRegion("xs-lookup-loop", trace.BlockExec{Block: lookup, Trips: 3500000})
		p.Finalise()
		return p, p.Validate()
	},
})
