GO ?= go

.PHONY: ci fmt-check vet build test-short test test-race test-persist bench

# ci is the tier-1 gate: formatting, static checks, build, fast tests,
# the race detector over the concurrent subsystems, and the persistence
# suite.
ci: fmt-check vet build test-short test-race test-persist

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test-short skips the slow experiment sweeps (< 1 minute).
test-short:
	$(GO) test -short ./...

# test runs everything, including the full experiment smoke sweeps.
test:
	$(GO) test ./...

# test-race gates the concurrency-heavy packages (scheduler fan-out,
# in-flight result cache and write-behind spiller, disk store, job
# queue/cancel/Close interleavings) under the race detector.
test-race:
	$(GO) test -race ./internal/sched/... ./internal/resultcache/... ./internal/service/... ./internal/cachestore/...

# test-persist exercises the persistent cache store and every layer's
# warm-restart path (store scan/eviction/corruption recovery, scheduler,
# HTTP service, batch runner) against temp directories, under the race
# detector.
test-persist:
	$(GO) test -race ./internal/cachestore/...
	$(GO) test -race -run 'Persist|WarmRestart|RestartServes' ./internal/sched/... ./internal/service/... ./internal/experiments/... .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
