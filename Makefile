GO ?= go

# BENCHTIME scales the bench-json micro-benchmarks; ci overrides it to 1x
# so the harness is smoke-tested without paying for stable numbers.
# BENCH_OUT is where bench-json writes its JSON; the ci smoke discards it
# so a ci run never clobbers the committed performance trajectory.
BENCHTIME ?= 1s
BENCH_OUT ?= BENCH_pipeline.json

.PHONY: ci fmt-check vet build test-short test test-race test-persist \
	test-dist test-obs bench bench-json bench-json-smoke

# ci is the tier-1 gate: formatting, static checks, build, fast tests,
# the race detector over the concurrent subsystems, the persistence
# suite, the distributed-execution suite, the observability suite, and a
# 1x smoke of the bench-json harness so it cannot bit-rot.
ci: fmt-check vet build test-short test-race test-persist test-dist test-obs bench-json-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test-short skips the slow experiment sweeps (< 1 minute).
test-short:
	$(GO) test -short ./...

# test runs everything, including the full experiment smoke sweeps.
test:
	$(GO) test ./...

# test-race gates the concurrency-heavy packages (scheduler fan-out,
# in-flight result cache and write-behind spiller, disk store, job
# queue/cancel/Close interleavings) under the race detector — plus the
# signature collectors (mem, pin), which are reused across regions and fan
# out under the scheduler.
test-race:
	$(GO) test -race ./internal/obs/... ./internal/sched/... ./internal/resultcache/... ./internal/service/... ./internal/cachestore/... ./internal/mem/... ./internal/pin/...

# test-persist exercises the persistent cache store and every layer's
# warm-restart path (store scan/eviction/corruption recovery, scheduler,
# HTTP service, batch runner) against temp directories, under the race
# detector.
test-persist:
	$(GO) test -race ./internal/cachestore/...
	$(GO) test -race -run 'Persist|WarmRestart|RestartServes' ./internal/sched/... ./internal/service/... ./internal/experiments/... .

# test-dist exercises distributed execution end to end under the race
# detector: an in-process worker + coordinator pair over httptest (golden
# equivalence vs the local path, worker death mid-study, dead-fleet local
# fallback, cancellation of in-flight remote units) plus the executor
# layer's unit tests.
test-dist:
	$(GO) test -race -run 'Distributed|Worker|Executor|UnitRequest|LongPoll' \
		./internal/sched/... ./internal/service/...

# test-obs exercises the observability layer under the race detector: the
# registry/exposition/tracer unit tests, plus the end-to-end smokes that
# run studies against live servers and assert the key /metrics series are
# present and non-zero and the trace endpoint serves a rooted span tree.
test-obs:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'MetricsEndToEnd|TraceEndToEnd|InlineCollections' \
		./internal/sched/... ./internal/service/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json records the signature-pipeline performance trajectory: the
# mem/pin/sigvec micro-benchmarks plus end-to-end discovery, parsed into
# BENCH_pipeline.json (fails if any benchmark fails or produces no
# results). Each invocation APPENDS a run entry to the trajectory, so the
# history across PRs is preserved; see cmd/benchjson.
bench-json:
	$(GO) test -run '^$$' -benchmem -benchtime $(BENCHTIME) \
		-bench 'StackDist|^BenchmarkStream|BuildReference|BuilderSparse|BuilderDense|DiscoveryPipeline' \
		./internal/mem ./internal/pin ./internal/sigvec . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# bench-json-smoke is the ci wiring: one iteration per benchmark, just to
# prove the harness and the JSON emitter stay healthy; the output is
# discarded rather than overwriting the recorded trajectory.
bench-json-smoke: BENCHTIME = 1x
bench-json-smoke: BENCH_OUT = /dev/null
bench-json-smoke: bench-json
