GO ?= go

.PHONY: ci fmt-check vet build test-short test bench

# ci is the tier-1 gate: formatting, static checks, build, fast tests.
ci: fmt-check vet build test-short

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test-short skips the slow experiment sweeps (< 1 minute).
test-short:
	$(GO) test -short ./...

# test runs everything, including the full experiment smoke sweeps.
test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
