GO ?= go

# BENCHTIME scales the bench-json micro-benchmarks; ci overrides it to 1x
# so the harness is smoke-tested without paying for stable numbers.
# PIPELINE_BENCHTIME scales the end-to-end discovery benchmark
# separately: at over a second per op, the default -benchtime 1s runs it
# for exactly one iteration, so the recorded number carries first-run
# noise (pool/page-cache warm-up). 5x keeps the recording honest without
# making bench-json take minutes.
# BENCH_OUT is where bench-json writes its JSON; the ci smoke discards it
# so a ci run never clobbers the committed performance trajectory.
BENCHTIME ?= 1s
PIPELINE_BENCHTIME ?= 5x
BENCH_OUT ?= BENCH_pipeline.json

.PHONY: ci fmt-check vet lint lint-smoke build test-short test test-race \
	test-persist test-dist test-obs test-sweep test-purego bench bench-json \
	bench-json-smoke bench-diff

# ci is the tier-1 gate: formatting, static checks (go vet plus the
# project's own bpvet analyzers), build, fast tests, the race detector
# over the whole tree, the persistence suite, the distributed-execution
# suite, the observability suite, the batch-sweep suite, the
# scalar-fallback kernel leg, and a 1x smoke of the bench-json harness so
# it cannot bit-rot.
ci: fmt-check vet lint build test-short test-race test-persist test-dist test-obs test-sweep test-purego bench-json-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint runs cmd/bpvet, the project-specific analyzer suite (keyfields,
# locksafe, spanend, codecreg, noalloc — see the README "Static
# analysis" section), then proves the gate still bites: each analyzer's
# deliberate-violation corpus must make bpvet exit non-zero.
lint:
	$(GO) run ./cmd/bpvet ./...
	@$(MAKE) --no-print-directory lint-smoke

lint-smoke:
	@for dir in \
		internal/analysis/testdata/keyfields/bad \
		internal/analysis/testdata/locksafe/bad/service \
		internal/analysis/testdata/spanend/bad \
		internal/analysis/testdata/codecreg/bad \
		internal/analysis/testdata/noalloc/bad; do \
		if $(GO) run ./cmd/bpvet ./$$dir >/dev/null 2>&1; then \
			echo "lint-smoke: bpvet did not flag $$dir"; exit 1; fi; \
	done; echo "lint-smoke: bpvet flags all violation corpora"

build:
	$(GO) build ./...

# test-short skips the slow experiment sweeps (< 1 minute).
test-short:
	$(GO) test -short ./...

# test runs everything, including the full experiment smoke sweeps.
test:
	$(GO) test ./...

# test-race runs the whole tree under the race detector (-short skips
# the slow experiment sweeps, which test-persist/test-dist/test-obs
# already cover under -race where concurrency matters). It used to gate
# a hand-picked package list; a new concurrent package is now covered the
# day it lands instead of when someone remembers to add it here.
test-race:
	$(GO) test -race -short ./...

# test-persist exercises the persistent cache store and every layer's
# warm-restart path (store scan/eviction/corruption recovery, scheduler,
# HTTP service, batch runner) against temp directories, under the race
# detector.
test-persist:
	$(GO) test -race ./internal/cachestore/...
	$(GO) test -race -run 'Persist|WarmRestart|RestartServes' ./internal/sched/... ./internal/service/... ./internal/experiments/... .

# test-dist exercises distributed execution end to end under the race
# detector: an in-process worker + coordinator pair over httptest (golden
# equivalence vs the local path, worker death mid-study, dead-fleet local
# fallback, cancellation of in-flight remote units, cross-process trace
# propagation and grafting) plus the executor layer's unit tests.
test-dist:
	$(GO) test -race -run 'Distributed|Worker|Executor|UnitRequest|LongPoll' \
		./internal/sched/... ./internal/service/...

# test-obs exercises the observability layer under the race detector: the
# registry/exposition/tracer/logger unit tests (graft re-basing, event
# ring eviction, /debug/events filtering), plus the end-to-end smokes
# that run studies against live servers and assert the key /metrics
# series are present and non-zero, the trace endpoint serves a rooted
# span tree, and a two-worker study's trace merges the grafted worker
# subtrees into one tree.
test-obs:
	$(GO) test -race ./internal/obs/...
	$(GO) test -race -run 'MetricsEndToEnd|TraceEndToEnd|InlineCollections|DistributedTracePropagation' \
		./internal/sched/... ./internal/service/...

# test-sweep exercises the batch sweep compiler end to end under the race
# detector: planner-level dedup/subsumption accounting and the golden
# batch-vs-serial byte-identity invariant (internal/sched), the
# POST /studies:batch service surface with cancellation cascades and the
# 2-worker fleet equivalence run (internal/service), and the runner's
# batch pre-warm path (internal/experiments).
# -timeout 30m: the sched leg's golden equivalence runs (batch plus a
# serial reference per member) exceed go test's default 10m per-package
# budget under the race detector's ~10x slowdown.
test-sweep:
	$(GO) test -race -timeout 30m -run 'Sweep|BatchSweep|BatchStudies|StudySpecs' \
		./internal/sched/... ./internal/service/... ./internal/experiments/...

# test-purego proves the scalar projection fallback stays healthy on both
# of its paths: the purego build tag compiles the SIMD kernels out
# entirely, and BP_PUREGO=1 exercises the runtime override on the normal
# build (internal/cpu's TestPuregoOverride only bites under it). -count=1
# defeats test caching, which would otherwise replay results recorded
# without the env var.
test-purego:
	$(GO) test -tags purego -count=1 ./internal/cpu/ ./internal/sigvec/ ./internal/core/
	BP_PUREGO=1 $(GO) test -count=1 ./internal/cpu/ ./internal/sigvec/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json records the signature-pipeline performance trajectory: the
# mem/pin/sigvec micro-benchmarks, the sweep-planner compile benchmark,
# plus end-to-end discovery, parsed into BENCH_pipeline.json (fails if any benchmark fails or produces no
# results). Each invocation APPENDS a run entry to the trajectory, so the
# history across PRs is preserved; see cmd/benchjson. The end-to-end
# discovery benchmark runs in its own invocation at PIPELINE_BENCHTIME
# iterations (see the variable's comment); if either invocation fails,
# benchjson sees the FAIL line and refuses to record.
bench-json:
	{ $(GO) test -run '^$$' -benchmem -benchtime $(BENCHTIME) \
		-bench 'StackDist|^BenchmarkStream|BuildReference|BuilderSparse|BuilderDense' \
		./internal/mem ./internal/pin ./internal/sigvec; \
	  $(GO) test -run '^$$' -benchmem -benchtime $(BENCHTIME) \
		-bench 'SweepPlanner' ./internal/sched; \
	  $(GO) test -run '^$$' -benchmem -benchtime $(PIPELINE_BENCHTIME) \
		-bench 'DiscoveryPipeline' .; } \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# bench-json-smoke is the ci wiring: one iteration per benchmark, just to
# prove the harness and the JSON emitter stay healthy; the output is
# discarded rather than overwriting the recorded trajectory.
bench-json-smoke: BENCHTIME = 1x
bench-json-smoke: PIPELINE_BENCHTIME = 1x
bench-json-smoke: BENCH_OUT = /dev/null
bench-json-smoke: bench-json

# bench-diff compares the two newest runs of the recorded trajectory and
# fails on regressions (>10% ns/op on the same CPU, or any allocation on
# a benchmark the previous run pinned at zero allocs). Run bench-json
# first to record the candidate run.
bench-diff:
	$(GO) run ./cmd/benchjson -diff $(BENCH_OUT)
