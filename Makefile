GO ?= go

.PHONY: ci fmt-check vet build test-short test test-race bench

# ci is the tier-1 gate: formatting, static checks, build, fast tests,
# and the race detector over the concurrent subsystems.
ci: fmt-check vet build test-short test-race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# test-short skips the slow experiment sweeps (< 1 minute).
test-short:
	$(GO) test -short ./...

# test runs everything, including the full experiment smoke sweeps.
test:
	$(GO) test ./...

# test-race gates the concurrency-heavy packages (scheduler fan-out,
# in-flight result cache, job queue/cancel/Close interleavings) under the
# race detector.
test-race:
	$(GO) test -race ./internal/sched/... ./internal/resultcache/... ./internal/service/...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
