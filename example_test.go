package barrierpoint_test

import (
	"fmt"
	"log"
	"os"

	"barrierpoint"
)

// ExampleRunStudy runs the paper's whole Section V workflow for one proxy
// application and prints the headline numbers of the best barrier point
// set.
func ExampleRunStudy() {
	app, err := barrierpoint.AppByName("MCB")
	if err != nil {
		log.Fatal(err)
	}
	res, err := barrierpoint.RunStudy(app.Name, app.Build, barrierpoint.StudyConfig{
		Threads: 2, Runs: 1, Reps: 20, Seed: 2017,
	})
	if err != nil {
		log.Fatal(err)
	}
	best := res.BestEval()
	fmt.Printf("selected %d of %d barrier points (%.0f%% of instructions)\n",
		len(best.Set.Selected), res.TotalBPs, best.Set.InstructionsSelectedPct())
	// Output:
	// selected 4 of 10 barrier points (40% of instructions)
}

// ExampleDiscover shows the step-by-step API: discovery on x86_64
// followed by validation of the selection on the ARMv8 platform.
func ExampleDiscover() {
	app, err := barrierpoint.AppByName("miniFE")
	if err != nil {
		log.Fatal(err)
	}
	cfg := barrierpoint.DefaultDiscovery(2, false, 2017)
	cfg.Runs = 1
	sets, err := barrierpoint.Discover(app.Build, cfg)
	if err != nil {
		log.Fatal(err)
	}
	col, err := barrierpoint.Collect(app.Build, barrierpoint.CollectConfig{
		Variant: barrierpoint.Variant{ISA: barrierpoint.ARMv8()},
		Threads: 2, Reps: 20, Seed: 2017,
	})
	if err != nil {
		log.Fatal(err)
	}
	val, err := barrierpoint.Validate(&sets[0], col)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-architecture instruction error under 1%%: %v\n",
		val.AvgAbsErrPct[barrierpoint.Instructions] < 1)
	// Output:
	// cross-architecture instruction error under 1%: true
}

// ExampleDescribe prints a workload's structural summary, which predicts
// whether the methodology will help (Section V-B).
func ExampleDescribe() {
	app, err := barrierpoint.AppByName("PathFinder")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := app.Build(1, barrierpoint.Variant{ISA: barrierpoint.X8664()})
	if err != nil {
		log.Fatal(err)
	}
	barrierpoint.Describe(os.Stdout, prog, barrierpoint.Variant{ISA: barrierpoint.X8664()})
}
