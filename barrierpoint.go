// Package barrierpoint is a full reimplementation and simulation-based
// reproduction of "Crossing the Architectural Barrier: Evaluating
// Representative Regions of Parallel HPC Applications" (Ferrerón, Jagtap,
// Bischoff, Rușitoru — ISPASS 2017).
//
// The library implements the cross-architectural BarrierPoint methodology:
// an OpenMP workload is split at its barriers into barrier points, each
// barrier point is characterised by abstract signatures (basic block
// vectors and LRU-stack distance vectors), SimPoint-style k-means
// clustering selects representative barrier points with multipliers on the
// x86_64 platform, per-point performance counters measured natively on
// x86_64 and ARMv8 machine models reconstruct full-program behaviour, and
// validation reports the estimation error against the measured full run.
//
// The top-level API mirrors the paper's Section V workflow:
//
//	sets, err := barrierpoint.Discover(app.Build, barrierpoint.DefaultDiscovery(8, false, seed))
//	col, err := barrierpoint.Collect(app.Build, barrierpoint.CollectConfig{Variant: v, Threads: 8})
//	val, err := barrierpoint.Validate(&sets[0], col)
//
// or, for the whole cross-architecture evaluation of one workload:
//
//	res, err := barrierpoint.RunStudy("HPCG", app.Build, barrierpoint.StudyConfig{Threads: 8})
//
// Workloads are either the eleven HPC proxy applications from the paper's
// Table I (see Apps, AppByName) or custom programs assembled from the
// workload IR re-exported below (NewProgram, Block, BlockExec).
package barrierpoint

import (
	"context"
	"sync"

	"barrierpoint/internal/apps"
	"barrierpoint/internal/cachestore"
	"barrierpoint/internal/core"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/resultcache"
	"barrierpoint/internal/sched"
	"barrierpoint/internal/trace"
)

// Workflow types (Section V).
type (
	// ProgramBuilder constructs a workload for a thread count and binary
	// variant.
	ProgramBuilder = core.ProgramBuilder
	// DiscoveryConfig parameterises barrier point discovery (Step 2).
	DiscoveryConfig = core.DiscoveryConfig
	// BarrierPointSet is one discovery run's selection of representative
	// barrier points with multipliers.
	BarrierPointSet = core.BarrierPointSet
	// SelectedPoint is one representative barrier point.
	SelectedPoint = core.SelectedPoint
	// CollectConfig parameterises native counter collection (Step 3).
	CollectConfig = core.CollectConfig
	// Collection holds measured per-barrier-point and full-run counters.
	Collection = core.Collection
	// Validation is the estimation error of a reconstruction (Step 5).
	Validation = core.Validation
	// Applicability reports the Section V-B applicability checks.
	Applicability = core.Applicability
	// StudyConfig parameterises a full cross-architecture study.
	StudyConfig = core.StudyConfig
	// StudyResult is the outcome of a full cross-architecture study.
	StudyResult = core.StudyResult
	// SetEvaluation scores one barrier point set on both architectures.
	SetEvaluation = core.SetEvaluation
)

// Workflow functions.
var (
	// DefaultDiscovery returns the paper's discovery configuration
	// (10 runs, BBV+LDV signatures, k-means with BIC up to k=20).
	DefaultDiscovery = core.DefaultDiscovery
	// Discover runs Step 2 on the x86_64 platform.
	Discover = core.Discover
	// Collect runs Step 3 on the variant's native platform.
	Collect = core.Collect
	// Reconstruct runs Step 4: multiplier-weighted counter sums.
	Reconstruct = core.Reconstruct
	// Validate runs Step 5: estimation error against the full run.
	Validate = core.Validate
	// CheckApplicability evaluates the Section V-B limitations.
	CheckApplicability = core.CheckApplicability
)

// studyCache memoises expensive study intermediates (discovery baselines,
// collections, whole studies) across RunStudy calls in this process. The
// LRU bound caps retention at DefaultMaxEntries values for the process
// lifetime — the deliberate trade for repeated and overlapping studies
// returning without recomputation. PersistCache swaps in a disk-backed
// cache, so access goes through getStudyCache.
var (
	studyCacheMu sync.Mutex
	studyCache   = resultcache.New(resultcache.DefaultMaxEntries)
)

func getStudyCache() *resultcache.Cache {
	studyCacheMu.Lock()
	defer studyCacheMu.Unlock()
	return studyCache
}

// PersistCache backs this process's study cache with a persistent
// content-addressed store rooted at dir, so separate invocations of a
// batch tool (or a tool and a bpserved instance) pointed at the same
// directory share previously computed discovery runs, collections, and
// whole studies instead of recomputing them. maxBytes bounds the store's
// on-disk size (0 = unbounded); least recently used artifacts are evicted
// first. The directory is a pure cache — deleting it is always safe.
//
// Call it once at startup, before RunStudy. The returned function flushes
// pending writes, closes the store, and restores the cache that was in
// use before the call; invoke it before the process exits or results
// computed near the end may not reach disk.
func PersistCache(dir string, maxBytes int64) (close func() error, err error) {
	store, err := cachestore.Open(dir, cachestore.Options{MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	c := resultcache.NewWith(resultcache.Config{
		MaxEntries: resultcache.DefaultMaxEntries,
		Store:      store,
	})
	studyCacheMu.Lock()
	prev := studyCache
	studyCache = c
	studyCacheMu.Unlock()
	return func() error {
		studyCacheMu.Lock()
		if studyCache == c {
			// Later RunStudy calls must not hit the closed store.
			studyCache = prev
		}
		studyCacheMu.Unlock()
		return c.Close()
	}, nil
}

// RunStudy executes the whole workflow for one workload/configuration on
// the concurrent study scheduler (internal/sched): discovery runs, native
// collections and validations fan out across a worker pool and repeated
// intermediates are served from an in-process cache (persistent across
// processes after PersistCache). The result is byte-identical to the
// serial core.RunStudy reference for the same arguments.
//
// Each call returns its own StudyResult and Evals slice, so reordering or
// replacing evaluations is safe. The deep measurement data (Collections,
// Validations) may be shared with other calls for the same arguments and
// must be treated as read-only.
func RunStudy(app string, build ProgramBuilder, cfg StudyConfig) (*StudyResult, error) {
	res, err := sched.Run(context.Background(), sched.StudyRequest{
		App:    app,
		Build:  build,
		Config: cfg,
	}, sched.Options{Cache: getStudyCache()})
	if err != nil {
		return nil, err
	}
	clone := *res
	clone.Evals = append([]SetEvaluation(nil), res.Evals...)
	return &clone, nil
}

// ErrRegionCountMismatch is returned when a barrier point set cannot be
// applied across architectures because the executions have different
// numbers of barrier points (the paper's HPGMG-FV failure mode).
var ErrRegionCountMismatch = core.ErrRegionCountMismatch

// Machines and metrics.
type (
	// Machine is one evaluation platform (Table II).
	Machine = machine.Machine
	// Metric is one collected hardware counter.
	Metric = machine.Metric
	// Counters holds one value per metric.
	Counters = machine.Counters
)

// Metric values, in the paper's reporting order.
const (
	Cycles       = machine.Cycles
	Instructions = machine.Instructions
	L1DMisses    = machine.L1DMisses
	L2DMisses    = machine.L2DMisses
)

var (
	// IntelI7 returns the Intel Core i7-3770 platform model.
	IntelI7 = machine.IntelI7
	// APMXGene returns the AppliedMicro X-Gene platform model.
	APMXGene = machine.APMXGene
)

// ISAs and binary variants.
type (
	// ISA describes one instruction set architecture.
	ISA = isa.ISA
	// Variant is one of the four binary variants (ISA x vectorisation).
	Variant = isa.Variant
	// OpMix counts abstract operations per block iteration.
	OpMix = isa.OpMix
)

var (
	// X8664 returns the 64-bit Intel ISA with AVX.
	X8664 = isa.X8664
	// ARMv8 returns the 64-bit ARM ISA with Advanced SIMD.
	ARMv8 = isa.ARMv8
	// Variants returns the four binary variants in the paper's order.
	Variants = isa.Variants
)

// Workload IR, for assembling custom programs.
type (
	// Program is a workload: blocks, data regions and parallel regions.
	Program = trace.Program
	// Block is a static basic block.
	Block = trace.Block
	// BlockExec schedules executions of a block inside a region.
	BlockExec = trace.BlockExec
	// DataRegion is an array-like allocation.
	DataRegion = trace.DataRegion
	// Pattern describes a block's memory access pattern.
	Pattern = trace.Pattern
)

// Memory access patterns.
const (
	Sequential   = trace.Sequential
	Strided      = trace.Strided
	Random       = trace.Random
	PointerChase = trace.PointerChase
	Gather       = trace.Gather
	Multi        = trace.Multi
)

// NewProgram returns an empty workload program.
var NewProgram = trace.NewProgram

// Describe writes a human-readable summary of a workload's structure
// (blocks, footprint, region size distribution) to w.
var Describe = trace.Describe

// ComputeStats derives a workload's structural statistics for one variant.
var ComputeStats = trace.ComputeStats

// Stats summarises a workload's static and dynamic structure.
type Stats = trace.Stats

// App is one of the eleven HPC proxy applications of Table I.
type App = apps.App

var (
	// Apps returns all eleven applications in Table I order.
	Apps = apps.All
	// EvaluatedApps returns the seven applications the paper's
	// evaluation covers.
	EvaluatedApps = apps.Evaluated
	// AppByName looks an application up by its Table I name.
	AppByName = apps.ByName
)
