// Crossarch: reproduce one row of the paper's Table IV — run the full
// cross-architectural study for an HPC proxy application at 8 threads and
// report selection, estimation errors on both ISAs, and the
// simulation-time accounting.
package main

import (
	"flag"
	"fmt"
	"log"

	"barrierpoint"
)

func main() {
	appName := flag.String("app", "HPCG", "application from Table I")
	flag.Parse()

	app, err := barrierpoint.AppByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — %s\n(input: %s)\n\n", app.Name, app.Description, app.Input)

	res, err := barrierpoint.RunStudy(app.Name, app.Build, barrierpoint.StudyConfig{
		Threads: 8,
		Runs:    5,
		Reps:    20,
		Seed:    2017,
	})
	if err != nil {
		log.Fatal(err)
	}

	min, max := res.MinMaxSelected()
	fmt.Printf("barrier points: %d total; discovery runs selected %d-%d representatives\n",
		res.TotalBPs, min, max)

	best := res.BestEval()
	set := &best.Set
	fmt.Printf("best set: %d points covering %.2f%% of instructions (largest %.2f%%, speed-up %.1fx)\n\n",
		len(set.Selected), set.InstructionsSelectedPct(), set.LargestBPPct(), set.Speedup())

	fmt.Println("estimation error vs. measured full run (avg over threads):")
	report := func(name string, v *barrierpoint.Validation, verr error) {
		if v == nil {
			fmt.Printf("  %-7s not applicable: %v\n", name, verr)
			return
		}
		fmt.Printf("  %-7s cycles %5.2f%%  instructions %5.2f%%  L1D %6.2f%%  L2D %5.2f%%\n",
			name,
			v.AvgAbsErrPct[barrierpoint.Cycles],
			v.AvgAbsErrPct[barrierpoint.Instructions],
			v.AvgAbsErrPct[barrierpoint.L1DMisses],
			v.AvgAbsErrPct[barrierpoint.L2DMisses])
	}
	report("x86_64", best.X86, nil)
	report("ARMv8", best.ARM, best.ARMErr)

	if !res.Applicability.OK {
		fmt.Printf("\nlimitation: %s\n", res.Applicability.Reason)
	}
}
