// Vectorization: Section III/VI of the paper asks whether barrier points
// selected on an AVX (256-bit) binary remain representative when the same
// workload runs with Advanced SIMD (128-bit) vectors on ARM. This example
// shows the vector-width effect on instruction counts and then validates a
// vectorised x86_64 selection against both vectorised platforms.
package main

import (
	"fmt"
	"log"

	"barrierpoint"
)

func main() {
	app, err := barrierpoint.AppByName("AMGMk")
	if err != nil {
		log.Fatal(err)
	}
	const threads = 8

	// First show what vectorisation does to the dynamic instruction
	// stream on each ISA: AVX retires 4 doubles per operation, Advanced
	// SIMD 2, so the same -O3 build shrinks differently.
	fmt.Println("dynamic instructions for the full AMGMk run (8 threads):")
	counts := map[string]float64{}
	for _, v := range barrierpoint.Variants() {
		col, err := barrierpoint.Collect(app.Build, barrierpoint.CollectConfig{
			Variant: v, Threads: threads, Reps: 3, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		var instr float64
		for _, c := range col.Full {
			instr += c[barrierpoint.Instructions]
		}
		counts[v.String()] = instr
		fmt.Printf("  %-12s %14.0f\n", v.String(), instr)
	}
	fmt.Printf("AVX shrinks the stream by %.2fx, Advanced SIMD by %.2fx\n\n",
		counts["x86_64"]/counts["x86_64-vect"],
		counts["ARMv8"]/counts["ARMv8-vect"])

	// Now the paper's question: barrier points selected on the
	// *vectorised* x86_64 binary, validated on both vectorised platforms.
	disc := barrierpoint.DefaultDiscovery(threads, true, 7)
	disc.Runs = 3
	sets, err := barrierpoint.Discover(app.Build, disc)
	if err != nil {
		log.Fatal(err)
	}
	set := &sets[0]
	fmt.Printf("vectorised discovery selected %d of %d barrier points (%.2f%% of instructions)\n\n",
		len(set.Selected), set.TotalPoints, set.InstructionsSelectedPct())

	for _, v := range []barrierpoint.Variant{
		{ISA: barrierpoint.X8664(), Vectorised: true},
		{ISA: barrierpoint.ARMv8(), Vectorised: true},
	} {
		col, err := barrierpoint.Collect(app.Build, barrierpoint.CollectConfig{
			Variant: v, Threads: threads, Reps: 20, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		val, err := barrierpoint.Validate(set, col)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s estimation error: cycles %.2f%%  instructions %.2f%%\n",
			v.String(),
			val.AvgAbsErrPct[barrierpoint.Cycles],
			val.AvgAbsErrPct[barrierpoint.Instructions])
	}
	fmt.Println("\ndespite the different vector widths, the selection stays representative —")
	fmt.Println("the same conclusion as the paper's vectorised configurations in Figure 2")
}
