// Limitations: Section V-B of the paper identifies workloads the
// BarrierPoint methodology cannot help. This example demonstrates both
// failure modes through the public API: embarrassingly parallel
// applications with a single barrier point (RSBench), and
// architecture-dependent convergence that desynchronises the barrier point
// counts across ISAs (HPGMG-FV).
package main

import (
	"errors"
	"fmt"
	"log"

	"barrierpoint"
)

func main() {
	const threads = 8

	// Failure mode 1: a single parallel region.
	rsbench, err := barrierpoint.AppByName("RSBench")
	if err != nil {
		log.Fatal(err)
	}
	disc := barrierpoint.DefaultDiscovery(threads, false, 1)
	disc.Runs = 1
	sets, err := barrierpoint.Discover(rsbench.Build, disc)
	if err != nil {
		log.Fatal(err)
	}
	set := &sets[0]
	app := barrierpoint.CheckApplicability(set)
	fmt.Printf("RSBench: %d barrier point(s); applicable: %v\n", set.TotalPoints, app.OK)
	fmt.Printf("  %s\n", app.Reason)
	fmt.Printf("  selected instructions: %.0f%% — no simulation-time gain\n\n",
		set.InstructionsSelectedPct())

	// Failure mode 2: architecture-dependent iteration counts.
	hpgmg, err := barrierpoint.AppByName("HPGMG-FV")
	if err != nil {
		log.Fatal(err)
	}
	sets, err = barrierpoint.Discover(hpgmg.Build, disc)
	if err != nil {
		log.Fatal(err)
	}
	set = &sets[0]
	fmt.Printf("HPGMG-FV: %d barrier points discovered on x86_64\n", set.TotalPoints)

	armCol, err := barrierpoint.Collect(hpgmg.Build, barrierpoint.CollectConfig{
		Variant: barrierpoint.Variant{ISA: barrierpoint.ARMv8()},
		Threads: threads, Reps: 3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("          %d barrier points executed on ARMv8\n", armCol.NumBarrierPoints())

	if _, err := barrierpoint.Reconstruct(set, armCol); errors.Is(err, barrierpoint.ErrRegionCountMismatch) {
		fmt.Printf("cross-architecture reconstruction fails as expected:\n  %v\n", err)
		fmt.Println("\nfloating-point convergence differs between the ISAs, so the parallel")
		fmt.Println("sections do not match — the paper excludes HPGMG-FV for this reason")
	} else {
		log.Fatalf("expected a region count mismatch, got %v", err)
	}
}
