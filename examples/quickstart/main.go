// Quickstart: define a small custom OpenMP-style workload, discover its
// representative barrier points on x86_64, measure them natively, and
// check how well they predict the full run — the whole Section V workflow
// in one file.
package main

import (
	"fmt"
	"log"

	"barrierpoint"
)

// buildWorkload assembles a toy iterative solver: 20 iterations, each with
// a compute-heavy streaming region and an irregular lookup region.
func buildWorkload(threads int, v barrierpoint.Variant) (*barrierpoint.Program, error) {
	p := barrierpoint.NewProgram("toy-solver")
	field := p.AddData("field", 32*1024) // 2 MiB

	var computeMix barrierpoint.OpMix
	computeMix[0] = 3 // integer bookkeeping per iteration
	computeMix[1] = 2 // FP adds
	computeMix[2] = 2 // FP muls
	computeMix[4] = 2 // loads
	computeMix[5] = 1 // stores
	computeMix[6] = 1 // branch
	compute := p.AddBlock(barrierpoint.Block{
		Name:         "stencil",
		Mix:          computeMix,
		Vectorisable: true,
		LinesPerIter: 0.01,
		Pattern:      barrierpoint.Multi,
		Data:         field,
	})

	var lookupMix barrierpoint.OpMix
	lookupMix[0] = 4
	lookupMix[4] = 3
	lookupMix[6] = 2
	lookup := p.AddBlock(barrierpoint.Block{
		Name:         "lookup",
		Mix:          lookupMix,
		LinesPerIter: 0.02,
		Pattern:      barrierpoint.Random,
		Data:         field,
	})

	for i := 0; i < 20; i++ {
		p.AddRegion("stencil", barrierpoint.BlockExec{Block: compute, Trips: 500000})
		p.AddRegion("lookup", barrierpoint.BlockExec{Block: lookup, Trips: 300000})
	}
	p.Finalise()
	return p, p.Validate()
}

func main() {
	const threads = 4

	// Step 2: discover representative barrier points on x86_64.
	disc := barrierpoint.DefaultDiscovery(threads, false, 42)
	disc.Runs = 3
	sets, err := barrierpoint.Discover(buildWorkload, disc)
	if err != nil {
		log.Fatal(err)
	}
	set := &sets[0]
	fmt.Printf("workload has %d barrier points; selected %d representatives:\n",
		set.TotalPoints, len(set.Selected))
	for _, s := range set.Selected {
		fmt.Printf("  barrier point %2d  multiplier %5.1f\n", s.Index, s.Multiplier)
	}
	fmt.Printf("running the representatives executes %.1f%% of all instructions (%.0fx less simulation)\n\n",
		set.InstructionsSelectedPct(), set.Speedup())

	// Step 3+4+5: measure natively on both platforms, reconstruct, and
	// validate.
	for _, variant := range []barrierpoint.Variant{
		{ISA: barrierpoint.X8664()},
		{ISA: barrierpoint.ARMv8()},
	} {
		col, err := barrierpoint.Collect(buildWorkload, barrierpoint.CollectConfig{
			Variant: variant, Threads: threads, Reps: 20, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		val, err := barrierpoint.Validate(set, col)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s estimation error: cycles %.2f%%  instructions %.2f%%  L1D %.2f%%  L2D %.2f%%\n",
			variant.ISA.Name,
			val.AvgAbsErrPct[barrierpoint.Cycles],
			val.AvgAbsErrPct[barrierpoint.Instructions],
			val.AvgAbsErrPct[barrierpoint.L1DMisses],
			val.AvgAbsErrPct[barrierpoint.L2DMisses])
	}
	fmt.Println("\nthe x86_64-selected barrier points predict the ARM run too — the paper's main result")
}
