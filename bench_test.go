// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one benchmark per artefact, plus the ablation studies from
// DESIGN.md and micro-benchmarks of the core substrates.
//
// The experiment benchmarks share one Runner per benchmark (studies are
// cached after the first iteration), and use the Quick sweep — fewer
// discovery runs and thread counts than the paper's full configuration.
// The full sweep is available through:
//
//	go run ./cmd/bpexperiments -exp all
package barrierpoint_test

import (
	"io"
	"testing"

	"barrierpoint"
	"barrierpoint/internal/experiments"
	"barrierpoint/internal/isa"
	"barrierpoint/internal/machine"
	"barrierpoint/internal/omp"
	"barrierpoint/internal/pin"
	"barrierpoint/internal/sigvec"
	"barrierpoint/internal/simpoint"
	"barrierpoint/internal/xrand"
)

// sharedRunner caches studies across all experiment benchmarks, so the
// bench suite pays for each (app, threads, vectorised) study once.
var sharedRunner = experiments.NewRunner(experiments.Quick())

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	exp, err := experiments.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(sharedRunner, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1AppCatalog regenerates Table I.
func BenchmarkTable1AppCatalog(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Machines regenerates Table II.
func BenchmarkTable2Machines(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Selection regenerates Table III (barrier points selected
// per application across configurations and discovery runs).
func BenchmarkTable3Selection(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4Accuracy regenerates Table IV (estimation error and
// speed-up for the 8-thread configurations).
func BenchmarkTable4Accuracy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig1MCBPhases regenerates Figure 1 (MCB per-barrier-point CPI
// and L2D MPKI with two barrier point sets).
func BenchmarkFig1MCBPhases(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2Errors regenerates Figure 2 (estimation error per
// application, thread count, and prediction target).
func BenchmarkFig2Errors(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkLimitsApplicability regenerates the Section V-B limitation
// analysis.
func BenchmarkLimitsApplicability(b *testing.B) { benchExperiment(b, "limits") }

// BenchmarkOverheadVariability regenerates the Section V-C overhead and
// variability study.
func BenchmarkOverheadVariability(b *testing.B) { benchExperiment(b, "overhead") }

// BenchmarkHeadline regenerates the Section VI headline numbers.
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// BenchmarkAblationSignature compares BBV+LDV, BBV-only and LDV-only
// signatures.
func BenchmarkAblationSignature(b *testing.B) { benchExperiment(b, "ablation-signature") }

// BenchmarkAblationDropInsignificant reproduces the keep-all-points
// decision.
func BenchmarkAblationDropInsignificant(b *testing.B) { benchExperiment(b, "ablation-drop") }

// BenchmarkAblationDiscoveryRuns sweeps the number of discovery runs.
func BenchmarkAblationDiscoveryRuns(b *testing.B) { benchExperiment(b, "ablation-runs") }

// BenchmarkAblationProjectionDim sweeps the signature projection dimension.
func BenchmarkAblationProjectionDim(b *testing.B) { benchExperiment(b, "ablation-dim") }

// BenchmarkFutureWorkCoreTypes validates selections on in-order vs
// out-of-order target cores (Section VIII).
func BenchmarkFutureWorkCoreTypes(b *testing.B) { benchExperiment(b, "fw-coretypes") }

// BenchmarkFutureWorkCoarsen fuses LULESH's short regions (Section VIII).
func BenchmarkFutureWorkCoarsen(b *testing.B) { benchExperiment(b, "fw-coarsen") }

// BenchmarkFutureWorkMultiplex measures the counter-multiplexing cost
// (Section VIII).
func BenchmarkFutureWorkMultiplex(b *testing.B) { benchExperiment(b, "fw-multiplex") }

// BenchmarkFutureWorkRefine splits RSBench's single region into intervals
// (Section V-B).
func BenchmarkFutureWorkRefine(b *testing.B) { benchExperiment(b, "fw-refine") }

// BenchmarkFutureWorkISADiff quantifies cross-ISA instruction and cycle
// ratios (Section VIII).
func BenchmarkFutureWorkISADiff(b *testing.B) { benchExperiment(b, "fw-isadiff") }

// --- substrate micro-benchmarks ---

// BenchmarkNativeRunHPCG measures one full native (uninstrumented) machine
// run of HPCG on the Intel model with 8 threads.
func BenchmarkNativeRunHPCG(b *testing.B) {
	app, err := barrierpoint.AppByName("HPCG")
	if err != nil {
		b.Fatal(err)
	}
	v := isa.Variant{ISA: isa.X8664()}
	prog, err := app.Build(8, v)
	if err != nil {
		b.Fatal(err)
	}
	cfg := omp.Config{Machine: machine.IntelI7(), Variant: v, Threads: 8, WarmCaches: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := omp.Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPinInstrumentedRunHPCG measures one discovery run with full
// BBV+LDV collection.
func BenchmarkPinInstrumentedRunHPCG(b *testing.B) {
	app, err := barrierpoint.AppByName("HPCG")
	if err != nil {
		b.Fatal(err)
	}
	v := isa.Variant{ISA: isa.X8664()}
	prog, err := app.Build(8, v)
	if err != nil {
		b.Fatal(err)
	}
	cfg := omp.Config{Machine: machine.IntelI7(), Variant: v, Threads: 8, WarmCaches: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := pin.Stream(prog, cfg, pin.Options{}, func(pin.Signature) { n++ })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoveryPipeline measures end-to-end barrier point discovery —
// the streaming signature pipeline this repository's hot path is built
// around: instrumented execution (sparse BBV/LDV collection with
// generation-reset stack distances), per-point signature projection, and
// clustering, for one canonical plus one jittered run.
func BenchmarkDiscoveryPipeline(b *testing.B) {
	app, err := barrierpoint.AppByName("HPCG")
	if err != nil {
		b.Fatal(err)
	}
	cfg := barrierpoint.DefaultDiscovery(8, false, 42)
	cfg.Runs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := barrierpoint.Discover(app.Build, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansClustering measures SimPoint-style clustering of 1000
// signature points.
func BenchmarkKMeansClustering(b *testing.B) {
	rng := xrand.New(1)
	points := make([]simpoint.Point, 1000)
	for i := range points {
		vec := make([]float64, 30)
		centre := float64(i % 7)
		for j := range vec {
			vec[j] = centre + 0.05*rng.NormFloat64()
		}
		points[i] = simpoint.Point{Vec: vec, Weight: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simpoint.Cluster(points, simpoint.DefaultConfig(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignatureProjection measures signature vector construction for
// a realistic BBV/LDV size (40 blocks x 8 threads, 20 bins x 8 threads).
func BenchmarkSignatureProjection(b *testing.B) {
	rng := xrand.New(2)
	bbv := make([]float64, 40*8)
	ldv := make([]float64, 20*8)
	for i := range bbv {
		bbv[i] = rng.Float64() * 1000
	}
	for i := range ldv {
		ldv[i] = rng.Float64() * 1000
	}
	opts := sigvec.DefaultOptions(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigvec.Build(bbv, ldv, opts)
	}
}
