package barrierpoint_test

import (
	"os"
	"reflect"
	"testing"

	"barrierpoint"
)

// TestPersistCacheSharesStudiesAcrossReopens drives the public persistent
// cache: a study computed under one PersistCache lands on disk at close,
// and a fresh PersistCache over the same directory serves an equal result.
// (Recompute counters live below the public API; the unit-level guarantees
// are pinned by internal/sched's warm-restart tests.)
func TestPersistCacheSharesStudiesAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	cfg := barrierpoint.StudyConfig{Threads: 2, Runs: 2, Reps: 5, Seed: 3}

	closeCache, err := barrierpoint.PersistCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := barrierpoint.RunStudy("custom", customApp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := closeCache(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("PersistCache wrote nothing to the cache directory")
	}

	closeCache, err = barrierpoint.PersistCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closeCache()
	got, err := barrierpoint.RunStudy("custom", customApp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("disk-served study diverges from the cold run")
	}
}
