// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so the performance trajectory of the signature pipeline can be
// recorded and diffed across commits:
//
//	go test -run '^$' -bench Pipeline -benchmem ./... | benchjson -out BENCH_pipeline.json
//
// Only benchmark result lines (and the pkg:/cpu: context lines) are
// consumed; everything else — PASS, ok, warm-up output — is ignored, and
// failing input (no benchmark lines, or a FAIL line) exits non-zero so CI
// wiring cannot silently record an empty trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Package    string  `json:"package,omitempty"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc, failed, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run reported FAIL")
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Document, bool, error) {
	var doc Document
	var pkg string
	failed := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:"):
			// context noise
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, failed, sc.Err()
}

// parseBench parses one result line, e.g.
//
//	BenchmarkBuilderSparse-8   639954   2033 ns/op   0 B/op   0 allocs/op
func parseBench(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Package: pkg, Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in "<value> <unit>" pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, sawNs
}
