// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so the performance trajectory of the signature pipeline can be
// recorded and diffed across commits:
//
//	go test -run '^$' -bench Pipeline -benchmem ./... | benchjson -out BENCH_pipeline.json
//
// The output file is a trajectory: `{"runs": [...]}` with one entry per
// invocation, newest last. An existing file is appended to, never
// overwritten — the point of the record is comparing runs across commits
// — and a legacy single-run file (the pre-trajectory format) is wrapped
// into the first entry. -label tags a run (e.g. a commit hash).
//
// Only benchmark result lines (and the pkg:/cpu: context lines) are
// consumed; everything else — PASS, ok, warm-up output — is ignored, and
// failing input (no benchmark lines, or a FAIL line) exits non-zero so CI
// wiring cannot silently record an empty trajectory.
//
// -diff compares the trajectory's newest run against the one before it
// (`benchjson -diff BENCH_pipeline.json`), printing per-benchmark deltas
// and exiting non-zero on regressions: ns/op more than 10% slower (only
// when both runs report the same CPU — wall-clock numbers from different
// machines are not comparable), or any allocs/op increase on a benchmark
// the previous run pinned at zero allocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// gitCommit returns the short commit hash of the working tree, or "" when
// git (or a repository) is unavailable — attribution is best-effort, not
// a reason to fail a benchmark recording.
func gitCommit() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Result is one parsed benchmark line.
type Result struct {
	Package    string  `json:"package,omitempty"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Document is one recorded benchmark run.
type Document struct {
	// RecordedAt and Label identify the run within a trajectory.
	RecordedAt string `json:"recorded_at,omitempty"`
	Label      string `json:"label,omitempty"`
	// Commit is the repository's short commit hash at recording time
	// (suffixed -dirty when the tree had local changes), so trajectory
	// entries attribute to commits without relying on -label discipline.
	Commit     string   `json:"commit,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Trajectory is the on-disk shape: one entry per recorded run, newest
// last.
type Trajectory struct {
	Runs []Document `json:"runs"`
}

// loadTrajectory reads an existing trajectory file. A missing or empty
// file starts a fresh trajectory; a legacy single-run file becomes its
// first entry; anything else unparseable is an error — appending must
// never silently discard the recorded history.
func loadTrajectory(path string) (Trajectory, error) {
	var tr Trajectory
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return tr, nil
		}
		return tr, err
	}
	if len(data) == 0 {
		return tr, nil
	}
	if err := json.Unmarshal(data, &tr); err == nil && tr.Runs != nil {
		return tr, nil
	}
	var legacy Document
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy.Benchmarks) > 0 {
		return Trajectory{Runs: []Document{legacy}}, nil
	}
	return tr, fmt.Errorf("%s exists but is neither a trajectory nor a legacy run document", path)
}

func main() {
	out := flag.String("out", "", "trajectory file to append the run to (default: write the single run to stdout)")
	label := flag.String("label", "", "label for this run (e.g. a commit hash)")
	diffPath := flag.String("diff", "", "compare the trajectory file's latest run against its previous run and exit non-zero on regressions (ignores stdin)")
	flag.Parse()

	if *diffPath != "" {
		tr, err := loadTrajectory(*diffPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		report, flagged, err := diff(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(report)
		if flagged {
			os.Exit(1)
		}
		return
	}

	doc, failed, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run reported FAIL")
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	doc.Label = *label
	doc.Commit = gitCommit()

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	doc.RecordedAt = time.Now().UTC().Format(time.RFC3339)
	tr, err := loadTrajectory(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	tr.Runs = append(tr.Runs, doc)
	if err := writeTrajectory(*out, tr); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded run %d in %s (%d benchmarks)\n",
		len(tr.Runs), *out, len(doc.Benchmarks))
}

// writeTrajectory replaces the trajectory file atomically (temp file +
// rename), so a crash or full disk mid-write can never destroy the
// recorded history it just loaded. Non-regular targets (/dev/null in the
// CI smoke, pipes) are written directly — there is no history to
// preserve and renaming over a device would replace it.
func writeTrajectory(path string, tr Trajectory) error {
	marshal := func(w *os.File) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(tr)
	}
	if fi, err := os.Stat(path); err == nil && !fi.Mode().IsRegular() {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0)
		if err != nil {
			return err
		}
		defer f.Close()
		return marshal(f)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := marshal(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp's 0600 would stick to the renamed file; the trajectory
	// is a shared, committed artifact.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// nsRegressionPct is the ns/op slowdown (in percent) beyond which -diff
// flags a benchmark. Wall-clock numbers are only comparable on one
// machine, so the threshold is suppressed entirely when the two runs
// report different CPU strings; allocation counts are deterministic and
// compared unconditionally.
const nsRegressionPct = 10.0

// benchKey identifies one benchmark across trajectory runs.
type benchKey struct{ pkg, name string }

// diff compares the trajectory's newest run against the one before it and
// renders a per-benchmark delta table. It returns flagged=true when the
// latest run regressed: ns/op more than nsRegressionPct slower (same-CPU
// runs only), or any allocs/op increase on a benchmark the previous run
// pinned at zero allocations.
func diff(tr Trajectory) (report string, flagged bool, err error) {
	if len(tr.Runs) < 2 {
		return "", false, fmt.Errorf("trajectory has %d run(s); -diff needs at least 2", len(tr.Runs))
	}
	prev, cur := tr.Runs[len(tr.Runs)-2], tr.Runs[len(tr.Runs)-1]
	prevBy := make(map[benchKey]Result, len(prev.Benchmarks))
	for _, r := range prev.Benchmarks {
		prevBy[benchKey{r.Package, r.Name}] = r
	}
	sameCPU := prev.CPU == cur.CPU

	var b strings.Builder
	fmt.Fprintf(&b, "benchjson diff: run %d (%s) vs run %d (%s)\n",
		len(tr.Runs)-1, runTag(prev), len(tr.Runs), runTag(cur))
	if !sameCPU {
		fmt.Fprintf(&b, "  CPUs differ (%q vs %q): ns/op regressions not flagged\n", prev.CPU, cur.CPU)
	}
	for _, r := range cur.Benchmarks {
		p, ok := prevBy[benchKey{r.Package, r.Name}]
		if !ok {
			fmt.Fprintf(&b, "  %-40s new benchmark\n", r.Name)
			continue
		}
		delete(prevBy, benchKey{r.Package, r.Name})
		line := fmt.Sprintf("  %-40s ns/op %12.0f -> %12.0f (%+.1f%%)",
			r.Name, p.NsPerOp, r.NsPerOp, pctDelta(p.NsPerOp, r.NsPerOp))
		var marks []string
		if sameCPU && pctDelta(p.NsPerOp, r.NsPerOp) > nsRegressionPct {
			flagged = true
			marks = append(marks, fmt.Sprintf("REGRESSION: ns/op up >%g%%", nsRegressionPct))
		}
		if p.AllocsPerOp != nil && r.AllocsPerOp != nil {
			line += fmt.Sprintf("  allocs/op %.0f -> %.0f", *p.AllocsPerOp, *r.AllocsPerOp)
			if *p.AllocsPerOp == 0 && *r.AllocsPerOp > 0 {
				flagged = true
				marks = append(marks, "REGRESSION: zero-alloc benchmark now allocates")
			}
		}
		b.WriteString(line)
		for _, m := range marks {
			b.WriteString("  [" + m + "]")
		}
		b.WriteByte('\n')
	}
	for k := range prevBy {
		fmt.Fprintf(&b, "  %-40s dropped (present in previous run only)\n", k.name)
	}
	return b.String(), flagged, nil
}

// pctDelta returns the percentage change from prev to cur.
func pctDelta(prev, cur float64) float64 {
	if prev == 0 {
		return 0
	}
	return (cur - prev) / prev * 100
}

// runTag renders a run's most specific identifier for the diff header.
func runTag(d Document) string {
	switch {
	case d.Label != "":
		return d.Label
	case d.Commit != "":
		return d.Commit
	case d.RecordedAt != "":
		return d.RecordedAt
	}
	return "unlabelled"
}

func parse(sc *bufio.Scanner) (Document, bool, error) {
	var doc Document
	var pkg string
	failed := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:"):
			// context noise
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, failed, sc.Err()
}

// parseBench parses one result line, e.g.
//
//	BenchmarkBuilderSparse-8   639954   2033 ns/op   0 B/op   0 allocs/op
func parseBench(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Package: pkg, Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = procs
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// Remaining fields come in "<value> <unit>" pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, sawNs
}
