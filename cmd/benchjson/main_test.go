package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: barrierpoint/internal/sigvec
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBuildReference 	  159424	      7055 ns/op	    4608 B/op	       6 allocs/op
BenchmarkBuilderSparse-8  	  639954	      2033 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	barrierpoint/internal/sigvec	3.1s
pkg: barrierpoint/internal/mem
BenchmarkStackDistAccess 	32065758	        74.74 ns/op
PASS
ok  	barrierpoint/internal/mem	2.4s
`

func TestParse(t *testing.T) {
	doc, failed, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil || failed {
		t.Fatalf("err=%v failed=%v", err, failed)
	}
	if doc.CPU == "" {
		t.Error("cpu line not captured")
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	ref := doc.Benchmarks[0]
	if ref.Name != "BenchmarkBuildReference" || ref.Package != "barrierpoint/internal/sigvec" ||
		ref.Iterations != 159424 || ref.NsPerOp != 7055 ||
		ref.BytesPerOp == nil || *ref.BytesPerOp != 4608 ||
		ref.AllocsPerOp == nil || *ref.AllocsPerOp != 6 {
		t.Errorf("reference line parsed as %+v", ref)
	}
	sparse := doc.Benchmarks[1]
	if sparse.Name != "BenchmarkBuilderSparse" || sparse.Procs != 8 ||
		sparse.AllocsPerOp == nil || *sparse.AllocsPerOp != 0 {
		t.Errorf("-8 suffix line parsed as %+v", sparse)
	}
	mem := doc.Benchmarks[2]
	if mem.Package != "barrierpoint/internal/mem" || mem.NsPerOp != 74.74 || mem.BytesPerOp != nil {
		t.Errorf("no-benchmem line parsed as %+v", mem)
	}
}

func TestParseFail(t *testing.T) {
	_, failed, err := parse(bufio.NewScanner(strings.NewReader("FAIL\tbarrierpoint\t1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("FAIL line must be reported")
	}
}
