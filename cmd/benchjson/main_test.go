package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: barrierpoint/internal/sigvec
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBuildReference 	  159424	      7055 ns/op	    4608 B/op	       6 allocs/op
BenchmarkBuilderSparse-8  	  639954	      2033 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	barrierpoint/internal/sigvec	3.1s
pkg: barrierpoint/internal/mem
BenchmarkStackDistAccess 	32065758	        74.74 ns/op
PASS
ok  	barrierpoint/internal/mem	2.4s
`

func TestParse(t *testing.T) {
	doc, failed, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil || failed {
		t.Fatalf("err=%v failed=%v", err, failed)
	}
	if doc.CPU == "" {
		t.Error("cpu line not captured")
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	ref := doc.Benchmarks[0]
	if ref.Name != "BenchmarkBuildReference" || ref.Package != "barrierpoint/internal/sigvec" ||
		ref.Iterations != 159424 || ref.NsPerOp != 7055 ||
		ref.BytesPerOp == nil || *ref.BytesPerOp != 4608 ||
		ref.AllocsPerOp == nil || *ref.AllocsPerOp != 6 {
		t.Errorf("reference line parsed as %+v", ref)
	}
	sparse := doc.Benchmarks[1]
	if sparse.Name != "BenchmarkBuilderSparse" || sparse.Procs != 8 ||
		sparse.AllocsPerOp == nil || *sparse.AllocsPerOp != 0 {
		t.Errorf("-8 suffix line parsed as %+v", sparse)
	}
	mem := doc.Benchmarks[2]
	if mem.Package != "barrierpoint/internal/mem" || mem.NsPerOp != 74.74 || mem.BytesPerOp != nil {
		t.Errorf("no-benchmem line parsed as %+v", mem)
	}
}

func TestParseFail(t *testing.T) {
	_, failed, err := parse(bufio.NewScanner(strings.NewReader("FAIL\tbarrierpoint\t1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("FAIL line must be reported")
	}
}

// TestLoadTrajectory pins the append semantics: a missing or empty file
// starts fresh, a legacy single-run document becomes the trajectory's
// first entry (so committed history survives the format change), an
// existing trajectory is returned as-is, and garbage is an error rather
// than a silent overwrite.
func TestLoadTrajectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	tr, err := loadTrajectory(path)
	if err != nil || len(tr.Runs) != 0 {
		t.Fatalf("missing file: runs=%d err=%v", len(tr.Runs), err)
	}

	legacy := `{"cpu":"test-cpu","benchmarks":[{"name":"BenchmarkX","iterations":1,"ns_per_op":2}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 1 || tr.Runs[0].CPU != "test-cpu" || len(tr.Runs[0].Benchmarks) != 1 {
		t.Fatalf("legacy document not wrapped: %+v", tr)
	}

	tr.Runs = append(tr.Runs, Document{Label: "second", Benchmarks: tr.Runs[0].Benchmarks})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 2 || tr.Runs[1].Label != "second" {
		t.Fatalf("trajectory round-trip lost runs: %+v", tr)
	}

	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrajectory(path); err == nil {
		t.Error("garbage trajectory file must error, not be overwritten")
	}
}

// TestWriteTrajectoryRoundTrip: the atomic write lands a loadable file
// and leaves no temp litter behind.
func TestWriteTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := Trajectory{Runs: []Document{{Label: "r1", Benchmarks: []Result{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 2}}}}}
	if err := writeTrajectory(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Label != "r1" {
		t.Fatalf("round-trip lost the run: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after write, want just the trajectory", len(entries))
	}
}
