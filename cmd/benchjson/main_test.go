package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: barrierpoint/internal/sigvec
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkBuildReference 	  159424	      7055 ns/op	    4608 B/op	       6 allocs/op
BenchmarkBuilderSparse-8  	  639954	      2033 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	barrierpoint/internal/sigvec	3.1s
pkg: barrierpoint/internal/mem
BenchmarkStackDistAccess 	32065758	        74.74 ns/op
PASS
ok  	barrierpoint/internal/mem	2.4s
`

func TestParse(t *testing.T) {
	doc, failed, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil || failed {
		t.Fatalf("err=%v failed=%v", err, failed)
	}
	if doc.CPU == "" {
		t.Error("cpu line not captured")
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	ref := doc.Benchmarks[0]
	if ref.Name != "BenchmarkBuildReference" || ref.Package != "barrierpoint/internal/sigvec" ||
		ref.Iterations != 159424 || ref.NsPerOp != 7055 ||
		ref.BytesPerOp == nil || *ref.BytesPerOp != 4608 ||
		ref.AllocsPerOp == nil || *ref.AllocsPerOp != 6 {
		t.Errorf("reference line parsed as %+v", ref)
	}
	sparse := doc.Benchmarks[1]
	if sparse.Name != "BenchmarkBuilderSparse" || sparse.Procs != 8 ||
		sparse.AllocsPerOp == nil || *sparse.AllocsPerOp != 0 {
		t.Errorf("-8 suffix line parsed as %+v", sparse)
	}
	mem := doc.Benchmarks[2]
	if mem.Package != "barrierpoint/internal/mem" || mem.NsPerOp != 74.74 || mem.BytesPerOp != nil {
		t.Errorf("no-benchmem line parsed as %+v", mem)
	}
}

func TestParseFail(t *testing.T) {
	_, failed, err := parse(bufio.NewScanner(strings.NewReader("FAIL\tbarrierpoint\t1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Error("FAIL line must be reported")
	}
}

// TestLoadTrajectory pins the append semantics: a missing or empty file
// starts fresh, a legacy single-run document becomes the trajectory's
// first entry (so committed history survives the format change), an
// existing trajectory is returned as-is, and garbage is an error rather
// than a silent overwrite.
func TestLoadTrajectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	tr, err := loadTrajectory(path)
	if err != nil || len(tr.Runs) != 0 {
		t.Fatalf("missing file: runs=%d err=%v", len(tr.Runs), err)
	}

	legacy := `{"cpu":"test-cpu","benchmarks":[{"name":"BenchmarkX","iterations":1,"ns_per_op":2}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 1 || tr.Runs[0].CPU != "test-cpu" || len(tr.Runs[0].Benchmarks) != 1 {
		t.Fatalf("legacy document not wrapped: %+v", tr)
	}

	tr.Runs = append(tr.Runs, Document{Label: "second", Benchmarks: tr.Runs[0].Benchmarks})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Runs) != 2 || tr.Runs[1].Label != "second" {
		t.Fatalf("trajectory round-trip lost runs: %+v", tr)
	}

	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTrajectory(path); err == nil {
		t.Error("garbage trajectory file must error, not be overwritten")
	}
}

// fp returns a *float64 literal for building Result fixtures.
func fp(v float64) *float64 { return &v }

// run builds a one-CPU trajectory entry over the given benchmarks.
func run(cpu string, benchmarks ...Result) Document {
	return Document{CPU: cpu, Benchmarks: benchmarks}
}

func TestDiffNeedsTwoRuns(t *testing.T) {
	if _, _, err := diff(Trajectory{Runs: []Document{run("c")}}); err == nil {
		t.Error("single-run trajectory must error")
	}
}

// TestDiffFlagsNsRegression: >10% ns/op slowdown on the same CPU is
// flagged; an improvement and a within-threshold change are not.
func TestDiffFlagsNsRegression(t *testing.T) {
	tr := Trajectory{Runs: []Document{
		run("cpu0",
			Result{Name: "BenchmarkSlow", NsPerOp: 100},
			Result{Name: "BenchmarkOK", NsPerOp: 100},
			Result{Name: "BenchmarkFast", NsPerOp: 100}),
		run("cpu0",
			Result{Name: "BenchmarkSlow", NsPerOp: 111},
			Result{Name: "BenchmarkOK", NsPerOp: 109},
			Result{Name: "BenchmarkFast", NsPerOp: 50}),
	}}
	report, flagged, err := diff(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !flagged {
		t.Error("11% ns/op regression not flagged")
	}
	if !strings.Contains(report, "BenchmarkSlow") || strings.Count(report, "REGRESSION") != 1 {
		t.Errorf("report flags the wrong benchmarks:\n%s", report)
	}
}

// TestDiffSuppressesNsAcrossCPUs: wall-clock comparisons across different
// machines are meaningless, so a huge ns/op delta with differing CPU
// strings is reported but not flagged — while an alloc regression in the
// same pair still is.
func TestDiffSuppressesNsAcrossCPUs(t *testing.T) {
	tr := Trajectory{Runs: []Document{
		run("cpu0", Result{Name: "BenchmarkX", NsPerOp: 100, AllocsPerOp: fp(0)}),
		run("cpu1", Result{Name: "BenchmarkX", NsPerOp: 900, AllocsPerOp: fp(0)}),
	}}
	report, flagged, err := diff(tr)
	if err != nil {
		t.Fatal(err)
	}
	if flagged {
		t.Errorf("cross-CPU ns delta flagged:\n%s", report)
	}

	tr.Runs[1].Benchmarks[0].AllocsPerOp = fp(3)
	report, flagged, err = diff(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !flagged || !strings.Contains(report, "now allocates") {
		t.Errorf("alloc regression must be flagged even across CPUs:\n%s", report)
	}
}

// TestDiffFlagsZeroAllocRegression: any allocs/op increase on a
// previously zero-alloc benchmark is flagged; a nonzero->bigger change is
// reported but not flagged (the pinned contract is zero, not monotone).
func TestDiffFlagsZeroAllocRegression(t *testing.T) {
	tr := Trajectory{Runs: []Document{
		run("cpu0",
			Result{Name: "BenchmarkPinned", NsPerOp: 10, AllocsPerOp: fp(0)},
			Result{Name: "BenchmarkLoose", NsPerOp: 10, AllocsPerOp: fp(5)}),
		run("cpu0",
			Result{Name: "BenchmarkPinned", NsPerOp: 10, AllocsPerOp: fp(1)},
			Result{Name: "BenchmarkLoose", NsPerOp: 10, AllocsPerOp: fp(9)}),
	}}
	report, flagged, err := diff(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !flagged || strings.Count(report, "REGRESSION") != 1 || !strings.Contains(report, "BenchmarkPinned") {
		t.Errorf("zero-alloc pin not enforced correctly:\n%s", report)
	}
}

// TestDiffNewAndDroppedBenchmarks: additions and removals are reported
// informationally, never flagged.
func TestDiffNewAndDroppedBenchmarks(t *testing.T) {
	tr := Trajectory{Runs: []Document{
		run("cpu0", Result{Name: "BenchmarkOld", NsPerOp: 10}),
		run("cpu0", Result{Name: "BenchmarkNew", NsPerOp: 10}),
	}}
	report, flagged, err := diff(tr)
	if err != nil {
		t.Fatal(err)
	}
	if flagged {
		t.Errorf("membership change flagged:\n%s", report)
	}
	if !strings.Contains(report, "new benchmark") || !strings.Contains(report, "dropped") {
		t.Errorf("membership change not reported:\n%s", report)
	}
}

// TestWriteTrajectoryRoundTrip: the atomic write lands a loadable file
// and leaves no temp litter behind.
func TestWriteTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	want := Trajectory{Runs: []Document{{Label: "r1", Benchmarks: []Result{{Name: "BenchmarkX", Iterations: 1, NsPerOp: 2}}}}}
	if err := writeTrajectory(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := loadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].Label != "r1" {
		t.Fatalf("round-trip lost the run: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after write, want just the trajectory", len(entries))
	}
}
