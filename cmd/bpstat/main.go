// Command bpstat prints a one-shot fleet snapshot of a running bpserved
// coordinator for operators without a Prometheus stack: job and queue
// state per priority band, batch sweep counts with the planner's
// dedup/subsumption ratios, completed units by kind, cache hit rates
// (memory and disk), and per-worker dispatch health including
// quarantine deadlines. It reads the same GET /healthz and GET /metrics
// endpoints a monitoring stack would scrape, so it needs no extra
// server support and works against any coordinator version exposing
// them.
//
// Usage:
//
//	bpstat                              # coordinator on localhost:8080
//	bpstat -addr http://10.0.0.1:8080
//	watch -n2 bpstat                    # poor man's dashboard
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"barrierpoint/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "coordinator base URL (host:port also accepted)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-request timeout")
	)
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: *timeout}

	h, err := fetchHealth(client, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpstat:", err)
		os.Exit(1)
	}
	// Metrics are additive detail (per-kind unit counts, planner
	// accounting); a coordinator that serves /healthz but not /metrics
	// still gets a snapshot.
	units, unitErrs, sweeps, merr := fetchUnitCounts(client, base)

	up := time.Duration(h.UptimeSeconds * float64(time.Second)).Round(time.Second)
	fmt.Printf("bpserved at %s — status %s, up %s\n\n", base, h.Status, up)

	fmt.Printf("jobs    ")
	for _, st := range []service.State{
		service.StateQueued, service.StateRunning, service.StateDone,
		service.StateFailed, service.StateCancelled,
	} {
		fmt.Printf("  %s %d", st, h.Jobs[st])
	}
	fmt.Println()

	fmt.Printf("queue     depth %d", h.QueueDepth)
	for _, band := range sortedBands(h.QueueByPriority) {
		fmt.Printf("  band %d: %d", band, h.QueueByPriority[band])
	}
	fmt.Println()

	// Sweeps appear once the coordinator has seen a batch submission.
	if len(h.Sweeps) > 0 {
		fmt.Printf("sweeps  ")
		for _, st := range []service.State{
			service.StateQueued, service.StateRunning, service.StateDone,
			service.StateFailed, service.StateCancelled,
		} {
			fmt.Printf("  %s %d", st, h.Sweeps[st])
		}
		fmt.Println()
		if merr == nil && sweeps.naive() > 0 {
			naive := sweeps.naive()
			fmt.Printf("planner   %.0f units planned of %.0f naive   deduped %.0f (%.1f%%)   subsumed %.0f (%.1f%%)\n",
				sweeps.planned, naive,
				sweeps.deduped, 100*sweeps.deduped/naive,
				sweeps.subsumed, 100*sweeps.subsumed/naive)
		}
	}

	if merr == nil && len(units) > 0 {
		fmt.Printf("units   ")
		for _, kind := range sortedKeys(units) {
			fmt.Printf("  %s %.0f", kind, units[kind])
		}
		fmt.Printf("  (errors %.0f)\n", unitErrs)
	}

	c := h.Cache
	fmt.Printf("cache     mem %s (%d entries", hitRate(c.Hits, c.Misses), c.Entries)
	if c.Bytes > 0 {
		fmt.Printf(", %s", byteSize(c.Bytes))
	}
	fmt.Printf(")")
	if c.Disk != nil {
		fmt.Printf("   disk %s (%d entries, %s)   spills %d (errors %d)",
			hitRate(c.Disk.Hits, c.Disk.Misses), c.Disk.Entries, byteSize(c.Disk.Bytes),
			c.Spills, c.SpillErrors)
	}
	fmt.Println()

	if h.Distributed == nil {
		fmt.Println("\nlocal mode: no worker fleet configured")
		return
	}
	d := h.Distributed
	fmt.Printf("dispatch  remote %d   fallbacks %d   retries %d\n\n",
		d.RemoteUnits, d.LocalFallbacks, d.Retries)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "worker\thealthy\tinflight\tunits\tfailures\tquarantined until")
	for _, w := range d.Workers {
		down := "-"
		if w.DownUntil != nil {
			down = w.DownUntil.Format(time.TimeOnly)
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%d\t%s\n",
			w.URL, w.Healthy, w.Inflight, w.Units, w.Failures, down)
	}
	tw.Flush()
}

func fetchHealth(client *http.Client, base string) (*service.Health, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /healthz: %s", resp.Status)
	}
	var h service.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("decoding /healthz: %w", err)
	}
	return &h, nil
}

// sweepCounters aggregates the sweep planner's bp_sweep_units_* counters.
type sweepCounters struct {
	planned, deduped, subsumed float64
}

// naive is the unit count the sweep's studies would have submitted
// one-at-a-time; the dedup and subsumption ratios are relative to it.
func (s sweepCounters) naive() float64 { return s.planned + s.deduped + s.subsumed }

// fetchUnitCounts scrapes /metrics for the per-kind unit counters and the
// sweep planner's accounting. The parse is deliberately minimal: sample
// lines only, looking for exactly the bp_sched_unit_seconds_count,
// bp_sched_unit_errors_total and bp_sweep_units_* families.
func fetchUnitCounts(client *http.Client, base string) (map[string]float64, float64, sweepCounters, error) {
	var sweeps sweepCounters
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, 0, sweeps, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, sweeps, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, sweeps, err
	}
	units := map[string]float64{}
	var unitErrs float64
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		name := line[:sp]
		switch {
		case strings.HasPrefix(name, "bp_sched_unit_seconds_count{"):
			if kind, ok := labelValue(name, "kind"); ok {
				units[kind] += v
			}
		case strings.HasPrefix(name, "bp_sched_unit_errors_total"):
			unitErrs += v
		case name == "bp_sweep_units_planned_total":
			sweeps.planned = v
		case name == "bp_sweep_units_deduped_total":
			sweeps.deduped = v
		case name == "bp_sweep_units_subsumed_total":
			sweeps.subsumed = v
		}
	}
	return units, unitErrs, sweeps, nil
}

// labelValue extracts one label's value from a series name like
// `family{a="x",b="y"}`.
func labelValue(series, label string) (string, bool) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return "", false
	}
	for _, pair := range strings.Split(strings.TrimSuffix(series[i+1:], "}"), ",") {
		if k, v, ok := strings.Cut(pair, "="); ok && k == label {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

func sortedBands(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for band := range m {
		out = append(out, band)
	}
	// Highest band first — that is the order the queue drains in.
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func hitRate(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "0% hits (0/0)"
	}
	return fmt.Sprintf("%.1f%% hits (%d/%d)", 100*float64(hits)/float64(total), hits, total)
}

func byteSize(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGT"[exp])
}
