// Command bpserved serves the BarrierPoint study-execution subsystem over
// HTTP: studies are submitted as JSON, run on the concurrent scheduler
// with result caching, and polled (or long-polled with ?wait=) until
// their report is ready.
//
// With -workers=host:port,... the server runs distributed: study units
// are dispatched to a fleet of bpworker processes, with retry/backoff on
// worker failure and local fallback when no worker is healthy. Sharing
// one -cache-dir between the server and the fleet dedupes artifacts
// fleet-wide.
//
// With -cache-dir the result cache is backed by a persistent
// content-addressed store: computed studies survive restarts, and batch
// runs (bpexperiments -cache-dir) pointed at the same directory share the
// server's work. -cache-max-bytes bounds the store on disk; least
// recently used artifacts are evicted first. On SIGINT/SIGTERM the server
// shuts down gracefully: in-flight HTTP requests drain, running studies
// are cancelled at their next unit boundary, and pending cache writes are
// flushed to disk before the process exits.
//
// Usage:
//
//	bpserved -addr :8080 -unit-workers 8 -executors 2 -cache 256 -priority 0 \
//	         -cache-dir /var/cache/bp -cache-max-bytes 1073741824
//	bpserved -addr :8080 -workers 10.0.0.2:8081,10.0.0.3:8081 -cache-dir /mnt/bp
//
//	curl -s -X POST localhost:8080/studies \
//	     -d '{"app":"MCB","threads":8,"runs":10,"reps":20,"seed":2017,"priority":5}'
//	curl -s -X POST localhost:8080/studies:batch \
//	     -d '{"studies":[{"app":"MCB","threads":2},{"app":"MCB","threads":8}]}'
//	curl -s localhost:8080/sweeps/sw-000001             # per-study sweep progress
//	curl -s -X DELETE localhost:8080/sweeps/sw-000001   # cancel, cascades to members
//	curl -s localhost:8080/studies/s-000001             # live progress while running
//	curl -s 'localhost:8080/studies/s-000001?wait=30s'  # long-poll for the next change
//	curl -s -X DELETE localhost:8080/studies/s-000001   # cancel
//	curl -s localhost:8080/studies/s-000001/report
//	curl -s localhost:8080/studies/s-000001/trace      # per-unit span tree
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics                      # Prometheus text format
//	curl -s 'localhost:8080/debug/events?job=s-000001'  # recent structured events
//
// Diagnostics are structured JSONL events on stderr (one JSON object per
// line, with job/span correlation IDs); -log-level sets the minimum
// severity and GET /debug/events tails the most recent events without
// log-file access.
//
// -debug-addr serves Go's pprof profiler on a separate address
// (e.g. -debug-addr localhost:6060, then `go tool pprof
// http://localhost:6060/debug/pprof/profile`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"barrierpoint/internal/obs"
	"barrierpoint/internal/sched"
	"barrierpoint/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.String("workers", "", "comma-separated bpworker addresses (host:port,...) for distributed execution (empty = local)")
		winflight   = flag.Int("worker-inflight", 0, "concurrent units dispatched per remote worker (0 = default 4)")
		unitWorkers = flag.Int("unit-workers", 0, "per-study unit concurrency (0 = GOMAXPROCS)")
		executors   = flag.Int("executors", 2, "studies running concurrently")
		queue       = flag.Int("queue", 64, "submission queue depth")
		cacheSize   = flag.Int("cache", 256, "result cache entries")
		cacheMem    = flag.Int64("cache-mem-bytes", 0, "in-memory result cache byte bound (0 = entries only)")
		cacheDir    = flag.String("cache-dir", "", "persistent cache directory (empty = memory only)")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "persistent cache size bound in bytes (0 = unbounded)")
		priority    = flag.Int("priority", 0,
			fmt.Sprintf("default priority band for submissions that omit one (higher starts first, ±%d)", service.MaxPriority))
		maxSweep  = flag.Int("max-sweep-studies", 0, "member studies allowed per POST /studies:batch sweep (0 = default 64)")
		debugAddr = flag.String("debug-addr", "", "optional address serving net/http/pprof at /debug/pprof/ (empty = disabled)")
		logLevel  = flag.String("log-level", "info", "minimum structured-event severity (debug|info|warn|error)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpserved:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level, 2048)

	workerURLs, err := sched.ParseWorkerList(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpserved: -workers takes bpworker addresses (host:port,...); unit concurrency is -unit-workers: %v\n", err)
		os.Exit(2)
	}
	svc, err := service.New(service.Config{
		Workers:         *unitWorkers,
		Executors:       *executors,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		CacheBytes:      *cacheMem,
		CacheDir:        *cacheDir,
		CacheMaxBytes:   *cacheMax,
		DefaultPriority: *priority,
		WorkerURLs:      workerURLs,
		WorkerInflight:  *winflight,
		MaxSweepStudies: *maxSweep,
		Log:             logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpserved:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		svc.Close()
		fmt.Fprintln(os.Stderr, "bpserved:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bpserved: listening on %s\n", ln.Addr())
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "bpserved: persistent cache at %s\n", *cacheDir)
	}
	if len(workerURLs) > 0 {
		fmt.Fprintf(os.Stderr, "bpserved: distributing units across %d workers: %s\n",
			len(workerURLs), strings.Join(workerURLs, ", "))
	}
	if *debugAddr != "" {
		fmt.Fprintf(os.Stderr, "bpserved: pprof on %s/debug/pprof/\n", *debugAddr)
		obs.ServeDebug(*debugAddr, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "bpserved: "+format+"\n", args...)
		})
	}

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exit := 0
	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting and drain in-flight HTTP
		// requests first, then stop the service — which cancels running
		// studies and flushes pending cache writes to disk.
		fmt.Fprintln(os.Stderr, "bpserved: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "bpserved: shutdown:", err)
			exit = 1
		}
		cancel()
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bpserved:", err)
			exit = 1
		}
	}
	svc.Close()
	os.Exit(exit)
}
