// Command bpserved serves the BarrierPoint study-execution subsystem over
// HTTP: studies are submitted as JSON, run on the concurrent scheduler
// with result caching, and polled until their report is ready.
//
// Usage:
//
//	bpserved -addr :8080 -workers 8 -executors 2 -cache 256 -priority 0
//
//	curl -s -X POST localhost:8080/studies \
//	     -d '{"app":"MCB","threads":8,"runs":10,"reps":20,"seed":2017,"priority":5}'
//	curl -s localhost:8080/studies/s-000001            # live progress while running
//	curl -s -X DELETE localhost:8080/studies/s-000001  # cancel
//	curl -s localhost:8080/studies/s-000001/report
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"barrierpoint/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "per-study unit concurrency (0 = GOMAXPROCS)")
		executors = flag.Int("executors", 2, "studies running concurrently")
		queue     = flag.Int("queue", 64, "submission queue depth")
		cacheSize = flag.Int("cache", 256, "result cache entries")
		priority  = flag.Int("priority", 0,
			fmt.Sprintf("default priority band for submissions that omit one (higher starts first, ±%d)", service.MaxPriority))
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:         *workers,
		Executors:       *executors,
		QueueDepth:      *queue,
		CacheSize:       *cacheSize,
		DefaultPriority: *priority,
	})
	defer svc.Close()

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "bpserved: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "bpserved:", err)
		os.Exit(1)
	}
}
