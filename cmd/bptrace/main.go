// Command bptrace dumps per-barrier-point counter measurements as CSV for
// external plotting: one row per (barrier point, thread) with measured
// means and standard deviations of all four metrics, plus a column marking
// the barrier points the methodology selects.
//
// Usage:
//
//	bptrace -app MCB -threads 1 > mcb.csv
//	bptrace -app HPCG -threads 8 -variant ARMv8-vect -per-thread
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"barrierpoint"
	"barrierpoint/internal/machine"
)

func main() {
	var (
		app       = flag.String("app", "MCB", "application name from Table I")
		threads   = flag.Int("threads", 1, "thread count")
		variant   = flag.String("variant", "x86_64", "binary variant: x86_64, ARMv8, x86_64-vect, ARMv8-vect")
		reps      = flag.Int("reps", 20, "measurement repetitions")
		seed      = flag.Uint64("seed", 2017, "experiment seed")
		perThread = flag.Bool("per-thread", false, "one row per (barrier point, thread) instead of per barrier point")
	)
	flag.Parse()

	a, err := barrierpoint.AppByName(*app)
	if err != nil {
		fail(err)
	}
	var v barrierpoint.Variant
	switch *variant {
	case "x86_64":
		v = barrierpoint.Variant{ISA: barrierpoint.X8664()}
	case "ARMv8":
		v = barrierpoint.Variant{ISA: barrierpoint.ARMv8()}
	case "x86_64-vect":
		v = barrierpoint.Variant{ISA: barrierpoint.X8664(), Vectorised: true}
	case "ARMv8-vect":
		v = barrierpoint.Variant{ISA: barrierpoint.ARMv8(), Vectorised: true}
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}

	disc := barrierpoint.DefaultDiscovery(*threads, v.Vectorised, *seed)
	disc.Runs = 1
	sets, err := barrierpoint.Discover(a.Build, disc)
	if err != nil {
		fail(err)
	}
	selected := map[int]float64{}
	for _, s := range sets[0].Selected {
		selected[s.Index] = s.Multiplier
	}

	col, err := barrierpoint.Collect(a.Build, barrierpoint.CollectConfig{
		Variant: v, Threads: *threads, Reps: *reps, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}

	cols := []string{"bp"}
	if *perThread {
		cols = append(cols, "thread")
	}
	for _, m := range machine.Metrics() {
		name := strings.ReplaceAll(strings.ToLower(m.String()), " ", "_")
		cols = append(cols, name+"_mean", name+"_std")
	}
	cols = append(cols, "selected", "multiplier")
	fmt.Println(strings.Join(cols, ","))

	emit := func(bp int, thread int, mean, std barrierpoint.Counters) {
		row := []string{fmt.Sprint(bp)}
		if *perThread {
			row = append(row, fmt.Sprint(thread))
		}
		for _, m := range machine.Metrics() {
			row = append(row, fmt.Sprintf("%.2f", mean[m]), fmt.Sprintf("%.2f", std[m]))
		}
		mult, isSel := selected[bp]
		if isSel {
			row = append(row, "1", fmt.Sprintf("%.2f", mult))
		} else {
			row = append(row, "0", "0")
		}
		fmt.Println(strings.Join(row, ","))
	}

	for i := 0; i < col.NumBarrierPoints(); i++ {
		if *perThread {
			for t := 0; t < col.Threads; t++ {
				emit(i, t, col.PerBP[i][t], col.PerBPStd[i][t])
			}
			continue
		}
		var mean, std barrierpoint.Counters
		for t := 0; t < col.Threads; t++ {
			mean = mean.Add(col.PerBP[i][t])
			std = std.Add(col.PerBPStd[i][t])
		}
		emit(i, 0, mean, std)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bptrace:", err)
	os.Exit(1)
}
