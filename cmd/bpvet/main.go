// Command bpvet runs the project's static-analysis suite: five analyzers
// distilled from this repo's bug history (see the README "Static
// analysis" section and internal/analysis).
//
// Standalone, over package patterns (what `make lint` runs):
//
//	go run ./cmd/bpvet ./...
//	go run ./cmd/bpvet ./internal/service ./internal/sched
//
// Or as a vet tool under the build system's modular driver:
//
//	go build -o /tmp/bpvet ./cmd/bpvet
//	go vet -vettool=/tmp/bpvet ./...
//
// Exit status is 1 when there are findings (printed one per line as
// file:line:col: analyzer: message), 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"barrierpoint/internal/analysis"
)

func main() {
	// The vettool protocol (-V=full / -flags / foo.cfg) takes precedence;
	// anything else is a standalone run over package patterns.
	if analysis.VetMain(os.Args[1:], analysis.Analyzers()) {
		return
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bpvet [packages]\n\nRuns the project analyzers over the packages (default ./...).\n\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run("", patterns, analysis.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpvet:", err)
		os.Exit(2)
	}
	analysis.Print(os.Stdout, findings)
	if len(findings) > 0 {
		os.Exit(1)
	}
}
