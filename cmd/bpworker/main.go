// Command bpworker serves BarrierPoint study units over HTTP: one process
// in the worker fleet behind a distributed coordinator (bpserved or
// bpexperiments started with -workers). Units — discovery runs,
// collections, validations — are pure functions of their requests, so a
// worker holds no job state: it computes, memoises, and returns
// codec-serialised artifacts.
//
// Pointing the whole fleet (and its coordinator) at one shared -cache-dir
// makes every process's artifacts serve every other's misses, so
// cross-study overlap dedupes fleet-wide; without it each worker builds
// its own cache and studies still complete, at the cost of some repeated
// work.
//
// Usage:
//
//	bpworker -addr :8081 -max-inflight 8 -cache-dir /var/cache/bp
//
//	curl -s localhost:8081/healthz
//	curl -s localhost:8081/metrics        # Prometheus text format
//	curl -s localhost:8081/debug/events   # recent structured events
//
// Diagnostics are structured JSONL events on stderr; -log-level sets the
// minimum severity and GET /debug/events tails the ring of recent events.
//
// -debug-addr serves Go's pprof profiler on a separate address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"barrierpoint/internal/obs"
	"barrierpoint/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8081", "listen address")
		inflight  = flag.Int("max-inflight", 0, "concurrent units accepted (0 = GOMAXPROCS); excess requests get 429")
		cache     = flag.Int("cache", 256, "result cache entries")
		cacheMem  = flag.Int64("cache-mem-bytes", 0, "in-memory result cache byte bound (0 = entries only)")
		cacheDir  = flag.String("cache-dir", "", "persistent cache directory, ideally shared with the fleet (empty = memory only)")
		cacheMax  = flag.Int64("cache-max-bytes", 0, "persistent cache size bound in bytes (0 = unbounded)")
		debugAddr = flag.String("debug-addr", "", "optional address serving net/http/pprof at /debug/pprof/ (empty = disabled)")
		logLevel  = flag.String("log-level", "info", "minimum structured-event severity (debug|info|warn|error)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpworker:", err)
		os.Exit(2)
	}
	w, err := service.NewWorker(service.WorkerConfig{
		MaxInflight:   *inflight,
		CacheSize:     *cache,
		CacheBytes:    *cacheMem,
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMax,
		Log:           obs.NewLogger(os.Stderr, level, 2048),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpworker:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		w.Close()
		fmt.Fprintln(os.Stderr, "bpworker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bpworker: serving units on %s\n", ln.Addr())
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "bpworker: persistent cache at %s\n", *cacheDir)
	}
	if *debugAddr != "" {
		fmt.Fprintf(os.Stderr, "bpworker: pprof on %s/debug/pprof/\n", *debugAddr)
		obs.ServeDebug(*debugAddr, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "bpworker: "+format+"\n", args...)
		})
	}

	srv := &http.Server{Handler: w.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exit := 0
	select {
	case <-ctx.Done():
		// Graceful shutdown: in-flight units drain (their coordinators are
		// waiting on them), then pending cache writes flush to disk.
		fmt.Fprintln(os.Stderr, "bpworker: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "bpworker: shutdown:", err)
			exit = 1
		}
		cancel()
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bpworker:", err)
			exit = 1
		}
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bpworker: closing cache:", err)
		exit = 1
	}
	os.Exit(exit)
}
