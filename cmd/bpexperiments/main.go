// Command bpexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	bpexperiments -exp table4          # one experiment
//	bpexperiments -exp all             # everything (slow: full sweep)
//	bpexperiments -exp fig2 -quick     # reduced sweep for a fast look
//	bpexperiments -list                # available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"barrierpoint/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment name (see -list) or 'all'")
		quick = flag.Bool("quick", false, "reduced sweep: fewer discovery runs and thread counts")
		seed  = flag.Uint64("seed", 2017, "experiment seed")
		runs  = flag.Int("runs", 0, "override discovery runs (0 = preset)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.Name, e.Description)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.Runs = *runs
	}
	runner := experiments.NewRunner(cfg)

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, err := experiments.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bpexperiments:", err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		if err := e.Run(runner, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bpexperiments: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
