// Command bpexperiments regenerates the paper's tables and figures.
//
// Experiments render concurrently on the study scheduler — each study's
// discovery runs, collections and validations fan out across a bounded
// worker pool, and experiments sharing studies deduplicate through the
// runner's result cache — but output is printed in experiment order and
// is byte-identical for any -workers value.
//
// Usage:
//
//	bpexperiments -exp table4          # one experiment
//	bpexperiments -exp all             # everything (slow: full sweep)
//	bpexperiments -exp fig2 -quick     # reduced sweep for a fast look
//	bpexperiments -batch               # pre-plan the study sweep as one DAG
//	bpexperiments -unit-workers 16     # widen the scheduler
//	bpexperiments -workers host1:8081,host2:8081   # shard units across bpworkers
//	bpexperiments -list                # available experiments
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"barrierpoint/internal/experiments"
	"barrierpoint/internal/sched"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment name (see -list) or 'all'")
		quick       = flag.Bool("quick", false, "reduced sweep: fewer discovery runs and thread counts")
		seed        = flag.Uint64("seed", 2017, "experiment seed")
		runs        = flag.Int("runs", 0, "override discovery runs (0 = preset)")
		unitWorkers = flag.Int("unit-workers", 0, "total worker budget across experiments and per-study units (0 = GOMAXPROCS)")
		workers     = flag.String("workers", "", "comma-separated bpworker addresses (host:port,...) to shard units across (empty = in-process)")
		winflight   = flag.Int("worker-inflight", 0, "concurrent units dispatched per remote worker (0 = default 4)")
		serial      = flag.Bool("serial", false, "render experiments one at a time (same output, for timing comparisons)")
		batch       = flag.Bool("batch", false, "pre-plan the whole study sweep as one deduplicated unit DAG before rendering (same output)")
		list        = flag.Bool("list", false, "list experiments and exit")
		cacheDir    = flag.String("cache-dir", "", "persistent cache directory shared across invocations (empty = memory only)")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "persistent cache size bound in bytes (0 = unbounded)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.Name, e.Description)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, err := experiments.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bpexperiments:", err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	// -unit-workers is one total budget, split between the two levels of
	// parallelism: `width` experiments render concurrently and each study
	// inside them fans units across `budget/width` workers, so the product
	// stays ≈ the budget instead of squaring it. A single experiment gets
	// the whole budget for its per-study units.
	budget := *unitWorkers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	width := budget
	if width > len(selected) {
		width = len(selected)
	}
	if *serial {
		width = 1
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.Runs = *runs
	}
	cfg.Workers = budget / width
	// Distributed mode: study units are shipped to the bpworker fleet;
	// the local budget then only bounds dispatch concurrency.
	urls, err := sched.ParseWorkerList(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpexperiments: -workers takes bpworker addresses (host:port,...); the local worker budget is -unit-workers: %v\n", err)
		os.Exit(2)
	}
	cfg.WorkerURLs = urls
	cfg.WorkerInflight = *winflight
	if len(cfg.WorkerURLs) > 0 {
		fmt.Fprintf(os.Stderr, "[distributing units across %d workers]\n", len(cfg.WorkerURLs))
	}
	var runner *experiments.Runner
	if *cacheDir != "" {
		// A persistent cache makes separate invocations share work: the
		// second run of an experiment (or of a study another experiment
		// already needed) is served from disk.
		var err error
		runner, err = experiments.NewPersistentRunner(cfg, *cacheDir, *cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bpexperiments:", err)
			os.Exit(1)
		}
	} else {
		runner = experiments.NewRunner(cfg)
	}

	if *batch {
		// Batch mode: compile the full evaluation sweep into one
		// deduplicated unit DAG and execute it up front, so the renderers
		// below hit the cache for every study. Output is unchanged — the
		// batch plan feeds the same whole-study cache entries.
		specs := runner.Config().StudySpecs()
		t0 := time.Now()
		if _, stats, err := runner.BatchStudies(specs); err != nil {
			fmt.Fprintln(os.Stderr, "bpexperiments:", err)
			if cerr := runner.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "bpexperiments: closing cache:", cerr)
			}
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "[batch: %d studies planned as %d units (%d naive, %d deduped, %d subsumed) in %v]\n",
				stats.Studies, stats.PlannedUnits, stats.NaiveUnits, stats.DedupedUnits,
				stats.SubsumedUnits, time.Since(t0).Round(time.Millisecond))
		}
	}

	// Experiments render into per-experiment buffers so they can run
	// concurrently without interleaving; each experiment's output is
	// printed whole once it and every lower-indexed experiment have
	// finished. The bytes match the old serial loop exactly, but appear
	// per completed experiment rather than line by line.
	outs := make([]bytes.Buffer, len(selected))
	took := make([]time.Duration, len(selected))
	var (
		mu   sync.Mutex
		done = make([]bool, len(selected))
		next int
	)
	flush := func() { // caller holds mu
		for next < len(selected) && done[next] {
			os.Stdout.Write(outs[next].Bytes())
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n",
				selected[next].Name, took[next].Round(time.Millisecond))
			next++
		}
	}
	start := time.Now()
	err = sched.ForEach(context.Background(), len(selected), width,
		func(ctx context.Context, i int) error {
			t0 := time.Now()
			if err := selected[i].Run(runner, &outs[i]); err != nil {
				return fmt.Errorf("%s: %w", selected[i].Name, err)
			}
			mu.Lock()
			took[i] = time.Since(t0)
			done[i] = true
			flush()
			mu.Unlock()
			return nil
		})
	// Close before exiting either way: pending write-behinds must reach
	// the persistent store even when an experiment failed.
	if cerr := runner.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "bpexperiments: closing cache:", cerr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpexperiments:", err)
		os.Exit(1)
	}
	stats := runner.CacheStats()
	if stats.Disk != nil {
		fmt.Fprintf(os.Stderr, "[suite done in %v: %d experiments, cache %d hits / %d misses, disk %d hits / %d entries / %d bytes]\n",
			time.Since(start).Round(time.Millisecond), len(selected),
			stats.Hits, stats.Misses, stats.DiskHits, stats.Disk.Entries, stats.Disk.Bytes)
		return
	}
	fmt.Fprintf(os.Stderr, "[suite done in %v: %d experiments, cache %d hits / %d misses]\n",
		time.Since(start).Round(time.Millisecond), len(selected), stats.Hits, stats.Misses)
}
