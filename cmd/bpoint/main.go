// Command bpoint runs the cross-architectural BarrierPoint workflow for a
// single application and configuration and prints the discovered barrier
// point sets, the estimation errors on both platforms, and the
// simulation-time accounting.
//
// Usage:
//
//	bpoint -app HPCG -threads 8 -vect -runs 10 -reps 20 -seed 2017
package main

import (
	"flag"
	"fmt"
	"os"

	"barrierpoint"
	"barrierpoint/internal/machine"
)

func main() {
	var (
		app      = flag.String("app", "HPCG", "application name from Table I (see -list)")
		threads  = flag.Int("threads", 8, "thread count (1, 2, 4 or 8)")
		vect     = flag.Bool("vect", false, "use the vectorised binary variants")
		runs     = flag.Int("runs", 10, "barrier point discovery runs")
		reps     = flag.Int("reps", 20, "measurement repetitions")
		seed     = flag.Uint64("seed", 2017, "experiment seed")
		list     = flag.Bool("list", false, "list available applications and exit")
		all      = flag.Bool("all", false, "show every discovered set, not only the best")
		jsonOut  = flag.Bool("json", false, "emit the study summary as JSON")
		describe = flag.Bool("describe", false, "describe the workload's structure and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range barrierpoint.Apps() {
			marker := " "
			if a.EvaluatedInPaper {
				marker = "*"
			}
			fmt.Printf("%s %-11s %s\n", marker, a.Name, a.Description)
		}
		fmt.Println("\n* = part of the paper's evaluation (Table III/IV, Figure 2)")
		return
	}

	a, err := barrierpoint.AppByName(*app)
	if err != nil {
		fail(err)
	}
	if *describe {
		variant := barrierpoint.Variant{ISA: barrierpoint.X8664(), Vectorised: *vect}
		prog, err := a.Build(*threads, variant)
		if err != nil {
			fail(err)
		}
		barrierpoint.Describe(os.Stdout, prog, variant)
		return
	}
	if !*jsonOut {
		fmt.Printf("Running the Section V workflow for %s (%d threads, vectorised=%v)...\n\n",
			a.Name, *threads, *vect)
	}

	res, err := barrierpoint.RunStudy(a.Name, a.Build, barrierpoint.StudyConfig{
		Threads:    *threads,
		Vectorised: *vect,
		Runs:       *runs,
		Reps:       *reps,
		Seed:       *seed,
	})
	if err != nil {
		fail(err)
	}
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	min, max := res.MinMaxSelected()
	fmt.Printf("Barrier points: %d total; %d discovery runs selected between %d and %d\n",
		res.TotalBPs, len(res.Evals), min, max)
	if !res.Applicability.OK {
		fmt.Printf("Applicability: LIMITED — %s\n", res.Applicability.Reason)
	}
	fmt.Println()

	show := func(i int, e *barrierpoint.SetEvaluation) {
		set := &e.Set
		fmt.Printf("Set from run %d: %d barrier points, %.2f%% of instructions selected, "+
			"largest point %.2f%%, speed-up %.2fx\n",
			set.Run, len(set.Selected), set.InstructionsSelectedPct(),
			set.LargestBPPct(), set.Speedup())
		printVal := func(name string, v *barrierpoint.Validation, verr error) {
			if v == nil {
				fmt.Printf("  %-12s not applicable: %v\n", name, verr)
				return
			}
			fmt.Printf("  %-12s err%%: cycles %.2f  instructions %.2f  L1D %.2f  L2D %.2f\n",
				name,
				v.AvgAbsErrPct[machine.Cycles], v.AvgAbsErrPct[machine.Instructions],
				v.AvgAbsErrPct[machine.L1DMisses], v.AvgAbsErrPct[machine.L2DMisses])
		}
		printVal("x86_64:", e.X86, nil)
		printVal("ARMv8:", e.ARM, e.ARMErr)
	}

	if *all {
		for i := range res.Evals {
			show(i, &res.Evals[i])
			fmt.Println()
		}
		fmt.Printf("Best set: run %d\n", res.BestEval().Set.Run)
	} else {
		show(res.Best, res.BestEval())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bpoint:", err)
	os.Exit(1)
}
